// C3 — static policy-conflict analysis (paper §3.1): detecting modality
// conflicts before deployment.
//
// Series reported:
//   * analysis runtime vs number of policies (pairwise, so ~quadratic)
//   * conflicts found under a controlled conflict-injection rate
//   * SoD meta-policy checking cost
//
// Expected shape: runtime grows quadratically in the atom count but with
// a small constant (set intersections over tiny maps); conflicts found
// grows linearly with the injected conflict rate, and every injected
// conflict is detected (completeness, see the oracle property test).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "analysis/analysis.hpp"

namespace {

using namespace mdac;

/// Policies over a domain of subjects/resources/actions; a fraction of
/// deny policies exactly mirror a permit policy (injected conflicts).
std::vector<core::Policy> make_corpus(int n, double conflict_rate,
                                      common::Rng& rng) {
  std::vector<core::Policy> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    core::Policy p;
    p.policy_id = "p-" + std::to_string(i);
    const bool inject_conflict = i > 0 && rng.chance(conflict_rate);
    const int subject = inject_conflict ? (i - 1) % 20
                                        : static_cast<int>(rng.uniform_int(0, 19));
    const int resource = inject_conflict ? (i - 1) % 50
                                         : static_cast<int>(rng.uniform_int(0, 49));
    p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                          core::AttributeValue("res-" + std::to_string(resource)));
    core::Rule r;
    r.id = "r";
    r.effect = inject_conflict
                   ? core::Effect::kDeny
                   : (rng.chance(0.5) ? core::Effect::kPermit : core::Effect::kDeny);
    core::Target t;
    t.require(core::Category::kSubject, core::attrs::kSubjectId,
              core::AttributeValue("user-" + std::to_string(subject)));
    r.target = std::move(t);
    p.rules.push_back(std::move(r));
    out.push_back(std::move(p));
  }
  return out;
}

void BM_AnalysisVsPolicyCount(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  common::Rng rng(11);
  const auto corpus = make_corpus(n, 0.1, rng);
  std::vector<const core::Policy*> pointers;
  for (const auto& p : corpus) pointers.push_back(&p);

  std::size_t conflicts = 0;
  for (auto _ : state) {
    const analysis::AnalysisResult result = analysis::analyse(pointers);
    conflicts = result.conflicts.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["policies"] = n;
  state.counters["conflicts_found"] = static_cast<double>(conflicts);
}
BENCHMARK(BM_AnalysisVsPolicyCount)->Arg(50)->Arg(200)->Arg(800)->Arg(2000);

void BM_ConflictsVsInjectionRate(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  common::Rng rng(11);
  const auto corpus = make_corpus(400, rate, rng);
  std::vector<const core::Policy*> pointers;
  for (const auto& p : corpus) pointers.push_back(&p);

  std::size_t conflicts = 0;
  for (auto _ : state) {
    conflicts = analysis::analyse(pointers).conflicts.size();
  }
  state.counters["injection_pct"] = static_cast<double>(state.range(0));
  state.counters["conflicts_found"] = static_cast<double>(conflicts);
}
BENCHMARK(BM_ConflictsVsInjectionRate)->Arg(0)->Arg(5)->Arg(20)->Arg(50);

void BM_SodMetaPolicyCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  common::Rng rng(11);
  const auto corpus = make_corpus(n, 0.0, rng);
  std::vector<const core::Policy*> pointers;
  for (const auto& p : corpus) pointers.push_back(&p);
  const analysis::AnalysisResult base = analysis::analyse(pointers);

  std::vector<analysis::SodMetaPolicy> metas;
  for (int i = 0; i < 10; ++i) {
    metas.push_back({"sod-" + std::to_string(i), "res-" + std::to_string(i), "read",
                     "res-" + std::to_string(i + 10), "read"});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::check_sod(base.atoms, metas));
  }
  state.counters["policies"] = n;
}
BENCHMARK(BM_SodMetaPolicyCheck)->Arg(100)->Arg(400)->Arg(1600);

}  // namespace
