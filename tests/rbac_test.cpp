#include <gtest/gtest.h>

#include <memory>

#include "core/pdp.hpp"
#include "rbac/adapter.hpp"
#include "rbac/rbac.hpp"

namespace mdac::rbac {
namespace {

RbacModel hospital_model() {
  RbacModel m;
  for (const char* u : {"alice", "bob", "carol"}) m.add_user(u);
  for (const char* r : {"staff", "nurse", "doctor", "auditor", "pharmacist"}) {
    m.add_role(r);
  }
  // doctor > nurse > staff
  EXPECT_TRUE(m.add_inheritance("nurse", "staff"));
  EXPECT_TRUE(m.add_inheritance("doctor", "nurse"));

  EXPECT_TRUE(m.grant_permission("staff", {"cafeteria", "enter"}));
  EXPECT_TRUE(m.grant_permission("nurse", {"vitals", "read"}));
  EXPECT_TRUE(m.grant_permission("doctor", {"record", "write"}));
  EXPECT_TRUE(m.grant_permission("auditor", {"record", "audit"}));
  return m;
}

// ---------------------------------------------------------------------
// Core relations
// ---------------------------------------------------------------------

TEST(RbacTest, AssignmentAndPermissionCheck) {
  RbacModel m = hospital_model();
  EXPECT_TRUE(m.assign_user("alice", "doctor"));
  EXPECT_TRUE(m.user_has_permission("alice", {"record", "write"}));
  EXPECT_FALSE(m.user_has_permission("bob", {"record", "write"}));
}

TEST(RbacTest, HierarchyInheritsJuniorPermissions) {
  RbacModel m = hospital_model();
  ASSERT_TRUE(m.assign_user("alice", "doctor"));
  // Doctor inherits nurse and staff permissions transitively.
  EXPECT_TRUE(m.user_has_permission("alice", {"vitals", "read"}));
  EXPECT_TRUE(m.user_has_permission("alice", {"cafeteria", "enter"}));
  // But a nurse does not gain doctor permissions (inheritance is one-way).
  ASSERT_TRUE(m.assign_user("bob", "nurse"));
  EXPECT_FALSE(m.user_has_permission("bob", {"record", "write"}));
}

TEST(RbacTest, AuthorizedRolesIncludeJuniors) {
  RbacModel m = hospital_model();
  ASSERT_TRUE(m.assign_user("alice", "doctor"));
  const auto roles = m.authorized_roles("alice");
  EXPECT_TRUE(roles.count("doctor"));
  EXPECT_TRUE(roles.count("nurse"));
  EXPECT_TRUE(roles.count("staff"));
  EXPECT_FALSE(roles.count("auditor"));
  EXPECT_EQ(m.assigned_roles("alice"), std::set<std::string>{"doctor"});
}

TEST(RbacTest, UnknownEntitiesRejected) {
  RbacModel m = hospital_model();
  EXPECT_FALSE(m.assign_user("mallory", "doctor"));
  EXPECT_FALSE(m.assign_user("alice", "emperor"));
  EXPECT_FALSE(m.grant_permission("emperor", {"x", "y"}));
  EXPECT_FALSE(m.add_inheritance("doctor", "emperor"));
}

TEST(RbacTest, InheritanceCycleRejected) {
  RbacModel m = hospital_model();
  // doctor -> nurse -> staff exists; adding staff -> doctor closes a cycle.
  const Outcome o = m.add_inheritance("staff", "doctor");
  EXPECT_FALSE(o);
  EXPECT_NE(o.reason.find("cycle"), std::string::npos);
  EXPECT_FALSE(m.add_inheritance("doctor", "doctor"));
}

TEST(RbacTest, DeassignRemovesAccessAndSessionRoles) {
  RbacModel m = hospital_model();
  ASSERT_TRUE(m.assign_user("alice", "doctor"));
  const SessionId s = m.create_session("alice");
  ASSERT_TRUE(m.activate_role(s, "doctor"));
  ASSERT_TRUE(m.check_access(s, {"record", "write"}));

  ASSERT_TRUE(m.deassign_user("alice", "doctor"));
  EXPECT_FALSE(m.user_has_permission("alice", {"record", "write"}));
  EXPECT_FALSE(m.check_access(s, {"record", "write"}));
  EXPECT_TRUE(m.active_roles(s).empty());
}

TEST(RbacTest, DeassignStripsInheritedSessionRoles) {
  // alice activates "staff" (reachable only through her doctor
  // assignment); de-assigning doctor must deactivate staff too.
  RbacModel m = hospital_model();
  ASSERT_TRUE(m.assign_user("alice", "doctor"));
  const SessionId s = m.create_session("alice");
  ASSERT_TRUE(m.activate_role(s, "staff"));
  ASSERT_TRUE(m.check_access(s, {"cafeteria", "enter"}));

  ASSERT_TRUE(m.deassign_user("alice", "doctor"));
  EXPECT_TRUE(m.active_roles(s).empty());
  EXPECT_FALSE(m.check_access(s, {"cafeteria", "enter"}));
}

TEST(RbacTest, DeassignKeepsRolesStillAuthorizedOtherwise) {
  // alice holds BOTH doctor and nurse; losing doctor keeps nurse-derived
  // roles active.
  RbacModel m = hospital_model();
  ASSERT_TRUE(m.assign_user("alice", "doctor"));
  ASSERT_TRUE(m.assign_user("alice", "nurse"));
  const SessionId s = m.create_session("alice");
  ASSERT_TRUE(m.activate_role(s, "staff"));
  ASSERT_TRUE(m.deassign_user("alice", "doctor"));
  EXPECT_TRUE(m.active_roles(s).count("staff"));
  EXPECT_TRUE(m.check_access(s, {"cafeteria", "enter"}));
}

TEST(RbacTest, RevokePermission) {
  RbacModel m = hospital_model();
  ASSERT_TRUE(m.assign_user("alice", "doctor"));
  ASSERT_TRUE(m.revoke_permission("doctor", {"record", "write"}));
  EXPECT_FALSE(m.user_has_permission("alice", {"record", "write"}));
  EXPECT_FALSE(m.revoke_permission("doctor", {"record", "write"}));
}

// ---------------------------------------------------------------------
// Separation of duty
// ---------------------------------------------------------------------

TEST(RbacSodTest, SsdBlocksConflictingAssignment) {
  RbacModel m = hospital_model();
  ASSERT_TRUE(m.add_ssd_constraint({"doctor-auditor", {"doctor", "auditor"}, 2}));
  ASSERT_TRUE(m.assign_user("alice", "doctor"));
  const Outcome o = m.assign_user("alice", "auditor");
  EXPECT_FALSE(o);
  EXPECT_NE(o.reason.find("doctor-auditor"), std::string::npos);
  // A different user can still take the auditor role.
  EXPECT_TRUE(m.assign_user("bob", "auditor"));
}

TEST(RbacSodTest, SsdAppliesToInheritedRoles) {
  RbacModel m = hospital_model();
  // nurse inherits staff; forbid holding both nurse and pharmacist.
  ASSERT_TRUE(m.add_ssd_constraint({"nurse-pharmacist", {"nurse", "pharmacist"}, 2}));
  ASSERT_TRUE(m.assign_user("alice", "doctor"));  // doctor ⇒ authorised for nurse
  EXPECT_FALSE(m.assign_user("alice", "pharmacist"));
}

TEST(RbacSodTest, SsdRejectedIfExistingAssignmentViolates) {
  RbacModel m = hospital_model();
  ASSERT_TRUE(m.assign_user("alice", "doctor"));
  ASSERT_TRUE(m.assign_user("alice", "auditor"));
  EXPECT_FALSE(m.add_ssd_constraint({"late", {"doctor", "auditor"}, 2}));
}

TEST(RbacSodTest, CardinalityThreeAllowsTwo) {
  RbacModel m = hospital_model();
  ASSERT_TRUE(
      m.add_ssd_constraint({"spread", {"doctor", "auditor", "pharmacist"}, 3}));
  ASSERT_TRUE(m.assign_user("alice", "doctor"));
  ASSERT_TRUE(m.assign_user("alice", "auditor"));   // 2 of 3: allowed
  EXPECT_FALSE(m.assign_user("alice", "pharmacist"));  // 3 of 3: blocked
}

TEST(RbacSodTest, DsdBlocksSimultaneousActivation) {
  RbacModel m = hospital_model();
  ASSERT_TRUE(m.add_dsd_constraint({"no-dual-hats", {"doctor", "auditor"}, 2}));
  ASSERT_TRUE(m.assign_user("alice", "doctor"));
  ASSERT_TRUE(m.assign_user("alice", "auditor"));  // assignment OK (DSD only)

  const SessionId s = m.create_session("alice");
  ASSERT_TRUE(m.activate_role(s, "doctor"));
  EXPECT_FALSE(m.activate_role(s, "auditor"));  // blocked in same session
  // After dropping doctor, auditor becomes activatable.
  ASSERT_TRUE(m.deactivate_role(s, "doctor"));
  EXPECT_TRUE(m.activate_role(s, "auditor"));
}

TEST(RbacSodTest, ConstraintCardinalityValidation) {
  RbacModel m = hospital_model();
  EXPECT_FALSE(m.add_ssd_constraint({"bad", {"doctor"}, 1}));
  EXPECT_FALSE(m.add_dsd_constraint({"bad", {"doctor"}, 0}));
}

// ---------------------------------------------------------------------
// Sessions (least privilege)
// ---------------------------------------------------------------------

TEST(RbacSessionTest, InactiveRolesGrantNothing) {
  RbacModel m = hospital_model();
  ASSERT_TRUE(m.assign_user("alice", "doctor"));
  const SessionId s = m.create_session("alice");
  EXPECT_FALSE(m.check_access(s, {"record", "write"}));  // nothing active
  ASSERT_TRUE(m.activate_role(s, "doctor"));
  EXPECT_TRUE(m.check_access(s, {"record", "write"}));
}

TEST(RbacSessionTest, ActivationRequiresAuthorization) {
  RbacModel m = hospital_model();
  ASSERT_TRUE(m.assign_user("bob", "nurse"));
  const SessionId s = m.create_session("bob");
  EXPECT_FALSE(m.activate_role(s, "doctor"));
  EXPECT_TRUE(m.activate_role(s, "staff"));  // inherited junior is activatable
  EXPECT_TRUE(m.check_access(s, {"cafeteria", "enter"}));
}

TEST(RbacSessionTest, EndedSessionDeniesEverything) {
  RbacModel m = hospital_model();
  ASSERT_TRUE(m.assign_user("alice", "doctor"));
  const SessionId s = m.create_session("alice");
  ASSERT_TRUE(m.activate_role(s, "doctor"));
  m.end_session(s);
  EXPECT_FALSE(m.check_access(s, {"record", "write"}));
  EXPECT_FALSE(m.activate_role(s, "doctor"));
}

// ---------------------------------------------------------------------
// Bridges: attribute provider + policy compiler
// ---------------------------------------------------------------------

TEST(RbacAdapterTest, AttributeProviderExposesAuthorizedRoles) {
  RbacModel m = hospital_model();
  ASSERT_TRUE(m.assign_user("alice", "doctor"));
  RbacAttributeProvider provider(m);

  const auto req = core::RequestContext::make("alice", "r", "read");
  const auto bag = provider.resolve(core::Category::kSubject, core::attrs::kRole, req);
  ASSERT_TRUE(bag.has_value());
  EXPECT_TRUE(bag->contains(core::AttributeValue("doctor")));
  EXPECT_TRUE(bag->contains(core::AttributeValue("nurse")));
  EXPECT_FALSE(bag->contains(core::AttributeValue("auditor")));

  const auto unknown = core::RequestContext::make("mallory", "r", "read");
  EXPECT_FALSE(provider.resolve(core::Category::kSubject, core::attrs::kRole, unknown)
                   .has_value());
}

TEST(RbacAdapterTest, CompiledPolicySetMatchesModelSemantics) {
  // Property: PDP over the compiled policies + the RBAC attribute
  // provider decides exactly like RbacModel::user_has_permission.
  RbacModel m = hospital_model();
  ASSERT_TRUE(m.assign_user("alice", "doctor"));
  ASSERT_TRUE(m.assign_user("bob", "nurse"));
  ASSERT_TRUE(m.assign_user("carol", "auditor"));

  auto store = std::make_shared<core::PolicyStore>();
  store->add(compile_to_policy_set(m, "hospital"));
  RbacAttributeProvider provider(m);
  core::Pdp pdp(store);
  pdp.set_resolver(&provider);

  const std::vector<Permission> perms = {
      {"record", "write"}, {"record", "audit"}, {"vitals", "read"},
      {"cafeteria", "enter"}, {"vault", "open"}};
  for (const std::string user : {"alice", "bob", "carol"}) {
    for (const Permission& p : perms) {
      const auto req = core::RequestContext::make(user, p.resource, p.action);
      const bool model_says = m.user_has_permission(user, p);
      const core::Decision pdp_says = pdp.evaluate(req);
      EXPECT_EQ(model_says, pdp_says.is_permit())
          << user << " " << p.resource << ":" << p.action << " -> "
          << pdp_says.describe();
    }
  }
}

class RbacScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(RbacScaleSweep, DeepHierarchyChainsPermissions) {
  // A chain r0 <- r1 <- ... <- rN: the top role must inherit the bottom
  // role's permission regardless of depth.
  const int depth = GetParam();
  RbacModel m;
  m.add_user("u");
  for (int i = 0; i <= depth; ++i) m.add_role("r" + std::to_string(i));
  for (int i = depth; i > 0; --i) {
    ASSERT_TRUE(m.add_inheritance("r" + std::to_string(i),
                                  "r" + std::to_string(i - 1)));
  }
  ASSERT_TRUE(m.grant_permission("r0", {"base", "use"}));
  ASSERT_TRUE(m.assign_user("u", "r" + std::to_string(depth)));
  EXPECT_TRUE(m.user_has_permission("u", {"base", "use"}));
  EXPECT_EQ(m.authorized_roles("u").size(), static_cast<std::size_t>(depth + 1));
}

INSTANTIATE_TEST_SUITE_P(Depths, RbacScaleSweep, ::testing::Values(1, 2, 8, 32, 128));

}  // namespace
}  // namespace mdac::rbac
