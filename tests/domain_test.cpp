#include <gtest/gtest.h>

#include "core/serialization.hpp"
#include "domain/domain.hpp"

namespace mdac::domain {
namespace {

core::Policy role_policy(const std::string& id, const std::string& role,
                         const std::string& resource, const std::string& action) {
  core::Policy p;
  p.policy_id = id;
  p.rule_combining = "first-applicable";
  core::Rule permit;
  permit.id = id + "-permit";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kSubject, core::attrs::kRole, core::AttributeValue(role));
  t.require(core::Category::kResource, core::attrs::kResourceId,
            core::AttributeValue(resource));
  t.require(core::Category::kAction, core::attrs::kActionId,
            core::AttributeValue(action));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  core::Rule deny;
  deny.id = id + "-deny";
  deny.effect = core::Effect::kDeny;
  core::Target dt;
  dt.require(core::Category::kResource, core::attrs::kResourceId,
             core::AttributeValue(resource));
  deny.target = std::move(dt);
  p.rules.push_back(std::move(deny));
  return p;
}

// ---------------------------------------------------------------------
// Local domain behaviour
// ---------------------------------------------------------------------

TEST(DomainTest, LocalDecisionUsesDirectoryAttributes) {
  common::ManualClock clock(1000);
  Domain hospital("hospital", clock);
  hospital.register_user("alice",
                         {{core::attrs::kRole, core::Bag(core::AttributeValue("doctor"))}});
  hospital.add_policy(role_policy("records", "doctor", "record-1", "read"));

  // The request only names the subject; the role comes from the domain's
  // own directory via the PIP chain.
  EXPECT_TRUE(hospital.decide(core::RequestContext::make("alice", "record-1", "read"))
                  .is_permit());
  EXPECT_TRUE(hospital.decide(core::RequestContext::make("mallory", "record-1", "read"))
                  .is_deny());
}

TEST(DomainTest, EnforceRecordsHistoryOnPermitOnly) {
  common::ManualClock clock;
  Domain d("d", clock);
  d.register_user("alice",
                  {{core::attrs::kRole, core::Bag(core::AttributeValue("doctor"))}});
  d.add_policy(role_policy("records", "doctor", "record-1", "read"));

  ASSERT_TRUE(d.enforce(core::RequestContext::make("alice", "record-1", "read")).allowed);
  ASSERT_FALSE(d.enforce(core::RequestContext::make("bob", "record-1", "read")).allowed);
  EXPECT_EQ(d.history().size(), 1u);
  EXPECT_EQ(d.history().for_subject("alice").size(), 1u);
  EXPECT_TRUE(d.history().for_subject("bob").empty());
}

TEST(DomainTest, RepositoryAdoptionFeedsPdp) {
  common::ManualClock clock;
  Domain d("d", clock);
  d.register_user("alice",
                  {{core::attrs::kRole, core::Bag(core::AttributeValue("doctor"))}});
  const std::string doc =
      core::node_to_string(role_policy("records", "doctor", "r", "read"));
  ASSERT_TRUE(d.repository().submit(doc, "admin"));
  ASSERT_TRUE(d.repository().issue("records", "admin"));
  EXPECT_EQ(d.adopt_issued_policies(), 1u);
  EXPECT_TRUE(d.decide(core::RequestContext::make("alice", "r", "read")).is_permit());
}

TEST(DomainTest, IdentityAssertionForUnknownUserThrows) {
  common::ManualClock clock;
  Domain d("d", clock);
  EXPECT_THROW(d.issue_identity_assertion("ghost", "elsewhere", 100),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Cross-domain federation (Fig 1)
// ---------------------------------------------------------------------

class FederationTest : public ::testing::Test {
 protected:
  FederationTest()
      : clock_(10'000), hospital_("hospital", clock_), lab_("lab", clock_) {
    hospital_.register_user(
        "dr-jones",
        {{core::attrs::kRole, core::Bag(core::AttributeValue("doctor"))}});
    lab_.add_policy(role_policy("lab-results", "doctor", "sample-42", "read"));
  }

  common::ManualClock clock_;
  Domain hospital_;
  Domain lab_;
};

TEST_F(FederationTest, TrustedForeignDoctorAdmitted) {
  lab_.trust_domain(hospital_);
  const auto token = hospital_.issue_identity_assertion("dr-jones", "lab", 1000);
  const auto result = lab_.handle_cross_domain_request(token, "sample-42", "read");
  EXPECT_TRUE(result.allowed);
  EXPECT_EQ(result.token_status, tokens::TokenValidity::kValid);
  // The access lands in the lab's history.
  EXPECT_EQ(lab_.history().for_subject("dr-jones").size(), 1u);
}

TEST_F(FederationTest, NoTrustNoEntry) {
  // The lab never chose to trust the hospital's IdP: autonomy preserved.
  const auto token = hospital_.issue_identity_assertion("dr-jones", "lab", 1000);
  const auto result = lab_.handle_cross_domain_request(token, "sample-42", "read");
  EXPECT_FALSE(result.allowed);
  EXPECT_EQ(result.token_status, tokens::TokenValidity::kUntrustedIssuer);
}

TEST_F(FederationTest, ExpiredAssertionRejected) {
  lab_.trust_domain(hospital_);
  const auto token = hospital_.issue_identity_assertion("dr-jones", "lab", 1000);
  clock_.advance(1000);
  const auto result = lab_.handle_cross_domain_request(token, "sample-42", "read");
  EXPECT_FALSE(result.allowed);
  EXPECT_EQ(result.token_status, tokens::TokenValidity::kExpired);
}

TEST_F(FederationTest, AudienceMismatchRejected) {
  lab_.trust_domain(hospital_);
  const auto token =
      hospital_.issue_identity_assertion("dr-jones", "someone-else", 1000);
  const auto result = lab_.handle_cross_domain_request(token, "sample-42", "read");
  EXPECT_FALSE(result.allowed);
  EXPECT_EQ(result.token_status, tokens::TokenValidity::kWrongAudience);
}

TEST_F(FederationTest, LocalPolicyStillGoverns) {
  lab_.trust_domain(hospital_);
  // A valid token for a nurse: the lab's policy only admits doctors.
  hospital_.register_user(
      "nurse-smith", {{core::attrs::kRole, core::Bag(core::AttributeValue("nurse"))}});
  const auto token = hospital_.issue_identity_assertion("nurse-smith", "lab", 1000);
  const auto result = lab_.handle_cross_domain_request(token, "sample-42", "read");
  EXPECT_FALSE(result.allowed);
  EXPECT_EQ(result.token_status, tokens::TokenValidity::kValid);
  EXPECT_TRUE(result.decision.is_deny());
}

// ---------------------------------------------------------------------
// Virtual Organisation composition
// ---------------------------------------------------------------------

TEST(VirtualOrganisationTest, PairwiseTrustAndSharedPolicy) {
  common::ManualClock clock(5000);
  Domain a("domain-a", clock), b("domain-b", clock), c("domain-c", clock);
  a.register_user("alice",
                  {{core::attrs::kRole, core::Bag(core::AttributeValue("analyst"))}});

  VirtualOrganisation vo("science-vo");
  vo.add_member(&a);
  vo.add_member(&b);
  vo.add_member(&c);
  vo.establish_pairwise_trust();
  EXPECT_EQ(vo.distribute_policy(
                role_policy("vo-shared", "analyst", "vo-dataset", "read")),
            3u);

  // Alice (from a) can reach the shared dataset in both b and c.
  for (Domain* target : {&b, &c}) {
    const auto token = a.issue_identity_assertion("alice", target->name(), 1000);
    const auto result = target->handle_cross_domain_request(token, "vo-dataset", "read");
    EXPECT_TRUE(result.allowed) << target->name();
  }
}

TEST(VirtualOrganisationTest, MemberAutonomyOverridesVoPolicy) {
  // Domain b adds its own deny on top of the VO policy — deny-overrides
  // at the PDP root preserves member autonomy.
  common::ManualClock clock(5000);
  Domain a("domain-a", clock), b("domain-b", clock);
  a.register_user("alice",
                  {{core::attrs::kRole, core::Bag(core::AttributeValue("analyst"))}});
  VirtualOrganisation vo("vo");
  vo.add_member(&a);
  vo.add_member(&b);
  vo.establish_pairwise_trust();
  vo.distribute_policy(role_policy("vo-shared", "analyst", "vo-dataset", "read"));

  core::Policy local_ban;
  local_ban.policy_id = "b-local-ban";
  core::Rule deny;
  deny.id = "ban-alice";
  deny.effect = core::Effect::kDeny;
  core::Target t;
  t.require(core::Category::kSubject, core::attrs::kSubjectId,
            core::AttributeValue("alice"));
  deny.target = std::move(t);
  local_ban.rules.push_back(std::move(deny));
  b.add_policy(std::move(local_ban));

  const auto token = a.issue_identity_assertion("alice", "domain-b", 1000);
  const auto result = b.handle_cross_domain_request(token, "vo-dataset", "read");
  EXPECT_FALSE(result.allowed);
  EXPECT_TRUE(result.decision.is_deny());
}

}  // namespace
}  // namespace mdac::domain
