#include <gtest/gtest.h>

#include <memory>

#include "core/pdp.hpp"
#include "core/serialization.hpp"

namespace mdac::core {
namespace {

Policy resource_policy(const std::string& resource, Effect effect,
                       const std::string& id) {
  Policy p;
  p.policy_id = id;
  p.target_spec.require(Category::kResource, attrs::kResourceId,
                        AttributeValue(resource));
  Rule r;
  r.id = id + "-rule";
  r.effect = effect;
  p.rules.push_back(std::move(r));
  return p;
}

TEST(PdpTest, EvaluatesAgainstStore) {
  auto store = std::make_shared<PolicyStore>();
  store->add(resource_policy("doc", Effect::kPermit, "permit-doc"));
  store->add(resource_policy("vault", Effect::kDeny, "deny-vault"));
  Pdp pdp(store);

  EXPECT_TRUE(pdp.evaluate(RequestContext::make("a", "doc", "read")).is_permit());
  EXPECT_TRUE(pdp.evaluate(RequestContext::make("a", "vault", "read")).is_deny());
  EXPECT_TRUE(
      pdp.evaluate(RequestContext::make("a", "other", "read")).is_not_applicable());
}

TEST(PdpTest, RootCombiningRespected) {
  auto store = std::make_shared<PolicyStore>();
  store->add(resource_policy("doc", Effect::kPermit, "p1"));
  store->add(resource_policy("doc", Effect::kDeny, "p2"));

  Pdp deny_wins(store, PdpConfig{"deny-overrides", true});
  Pdp permit_wins(store, PdpConfig{"permit-overrides", true});
  const auto req = RequestContext::make("a", "doc", "read");
  EXPECT_TRUE(deny_wins.evaluate(req).is_deny());
  EXPECT_TRUE(permit_wins.evaluate(req).is_permit());
}

TEST(PdpTest, UnknownRootCombiningIsIndeterminate) {
  auto store = std::make_shared<PolicyStore>();
  Pdp pdp(store, PdpConfig{"nonsense", true});
  const Decision d = pdp.evaluate(RequestContext::make("a", "r", "read"));
  EXPECT_TRUE(d.is_indeterminate());
  EXPECT_EQ(d.status.code, StatusCode::kSyntaxError);
}

TEST(PdpTest, EmptyStoreIsNotApplicable) {
  Pdp pdp(std::make_shared<PolicyStore>());
  EXPECT_TRUE(pdp.evaluate(RequestContext::make("a", "r", "read")).is_not_applicable());
}

// ---------------------------------------------------------------------
// Target index
// ---------------------------------------------------------------------

TEST(PdpIndexTest, IndexSkipsNonCandidatePolicies) {
  auto store = std::make_shared<PolicyStore>();
  for (int i = 0; i < 100; ++i) {
    store->add(resource_policy("res-" + std::to_string(i), Effect::kPermit,
                               "p-" + std::to_string(i)));
  }
  Pdp pdp(store, PdpConfig{"deny-overrides", /*use_target_index=*/true});
  const PdpResult result =
      pdp.evaluate_with_metrics(RequestContext::make("a", "res-50", "read"));
  EXPECT_TRUE(result.decision.is_permit());
  EXPECT_EQ(result.candidates_skipped, 99u);
  // Only the candidate policy's rules were touched.
  EXPECT_EQ(result.metrics.rules_evaluated, 1u);
}

TEST(PdpIndexTest, IndexAndScanAgreeOnDecisions) {
  // Property: enabling the index never changes any decision.
  auto store = std::make_shared<PolicyStore>();
  for (int i = 0; i < 30; ++i) {
    store->add(resource_policy("res-" + std::to_string(i % 10),
                               i % 3 == 0 ? Effect::kDeny : Effect::kPermit,
                               "p-" + std::to_string(i)));
  }
  // One unindexable policy (non-equality target shape): matches "admin".
  Policy odd;
  odd.policy_id = "regex-policy";
  AnyOf any;
  AllOf all;
  Match m;
  m.function_id = "string-starts-with";
  m.literal = AttributeValue("adm");
  m.category = Category::kSubject;
  m.attribute_id = attrs::kSubjectId;
  all.matches.push_back(std::move(m));
  any.all_ofs.push_back(std::move(all));
  odd.target_spec.any_ofs.push_back(std::move(any));
  Rule r;
  r.id = "deny-admins";
  r.effect = Effect::kDeny;
  odd.rules.push_back(std::move(r));
  store->add(std::move(odd));

  Pdp indexed(store, PdpConfig{"deny-overrides", true});
  Pdp scanning(store, PdpConfig{"deny-overrides", false});

  for (const std::string subject : {"alice", "admin-bob"}) {
    for (int i = 0; i < 12; ++i) {
      const auto req =
          RequestContext::make(subject, "res-" + std::to_string(i), "read");
      const Decision a = indexed.evaluate(req);
      const Decision b = scanning.evaluate(req);
      EXPECT_EQ(a.type, b.type)
          << subject << " res-" << i << ": " << a.describe() << " vs " << b.describe();
    }
  }
}

TEST(PdpIndexTest, IndexRebuildsAfterStoreMutation) {
  auto store = std::make_shared<PolicyStore>();
  store->add(resource_policy("doc", Effect::kPermit, "p1"));
  Pdp pdp(store);
  EXPECT_TRUE(pdp.evaluate(RequestContext::make("a", "doc", "read")).is_permit());

  // Mutate through the same store; the PDP must notice.
  store->add(resource_policy("doc", Effect::kDeny, "p2"));
  EXPECT_TRUE(pdp.evaluate(RequestContext::make("a", "doc", "read")).is_deny());

  store->remove("p2");
  EXPECT_TRUE(pdp.evaluate(RequestContext::make("a", "doc", "read")).is_permit());
}

TEST(PdpIndexTest, DisjunctiveEqualityTargetsAreIndexed) {
  auto store = std::make_shared<PolicyStore>();
  Policy p;
  p.policy_id = "multi";
  p.target_spec.require_any(
      Category::kResource, attrs::kResourceId,
      {AttributeValue("a"), AttributeValue("b"), AttributeValue("c")});
  Rule r;
  r.id = "permit";
  r.effect = Effect::kPermit;
  p.rules.push_back(std::move(r));
  store->add(std::move(p));
  // Distractor policies to give the index something to skip.
  for (int i = 0; i < 20; ++i) {
    store->add(resource_policy("other-" + std::to_string(i), Effect::kDeny,
                               "d-" + std::to_string(i)));
  }

  Pdp pdp(store);
  for (const char* res : {"a", "b", "c"}) {
    const PdpResult result =
        pdp.evaluate_with_metrics(RequestContext::make("s", res, "read"));
    EXPECT_TRUE(result.decision.is_permit()) << res;
    EXPECT_EQ(result.candidates_skipped, 20u);
  }
  EXPECT_TRUE(pdp.evaluate(RequestContext::make("s", "z", "read")).is_not_applicable());
}

// ---------------------------------------------------------------------
// Resolver integration & metrics
// ---------------------------------------------------------------------

class MapResolver final : public AttributeResolver {
 public:
  std::map<std::string, Bag> attributes;
  int calls = 0;

  std::optional<Bag> resolve(Category, const std::string& id,
                             const RequestContext&) override {
    ++calls;
    const auto it = attributes.find(id);
    if (it == attributes.end()) return std::nullopt;
    return it->second;
  }
};

TEST(PdpResolverTest, ResolverSuppliesMissingAttributes) {
  auto store = std::make_shared<PolicyStore>();
  Policy p;
  p.policy_id = "role-gate";
  Rule r;
  r.id = "permit-doctors";
  r.effect = Effect::kPermit;
  r.condition = make_apply("any-of", function_ref("string-equal"), lit("doctor"),
                      designator(Category::kSubject, attrs::kRole, DataType::kString));
  p.rules.push_back(std::move(r));
  store->add(std::move(p));

  MapResolver resolver;
  resolver.attributes[attrs::kRole] = Bag(AttributeValue("doctor"));

  Pdp pdp(store);
  pdp.set_resolver(&resolver);
  // Request carries no role; the PIP supplies it.
  EXPECT_TRUE(pdp.evaluate(RequestContext::make("alice", "r", "read")).is_permit());
  EXPECT_GT(resolver.calls, 0);
}

TEST(PdpResolverTest, ResolverMemoisedWithinOneEvaluation) {
  auto store = std::make_shared<PolicyStore>();
  Policy p;
  p.policy_id = "double-lookup";
  Rule r;
  r.id = "uses-role-twice";
  r.effect = Effect::kPermit;
  r.condition = make_apply(
      "and",
      make_apply("any-of", function_ref("string-equal"), lit("doctor"),
            designator(Category::kSubject, attrs::kRole, DataType::kString)),
      make_apply("any-of", function_ref("string-equal"), lit("doctor"),
            designator(Category::kSubject, attrs::kRole, DataType::kString)));
  p.rules.push_back(std::move(r));
  store->add(std::move(p));

  MapResolver resolver;
  resolver.attributes[attrs::kRole] = Bag(AttributeValue("doctor"));
  Pdp pdp(store);
  pdp.set_resolver(&resolver);
  (void)pdp.evaluate(RequestContext::make("alice", "r", "read"));
  EXPECT_EQ(resolver.calls, 1);  // second designator hit the memo
}

TEST(PdpResolverTest, RequestAttributesShadowResolver) {
  auto store = std::make_shared<PolicyStore>();
  Policy p;
  p.policy_id = "gate";
  Rule r;
  r.id = "permit-doctors";
  r.effect = Effect::kPermit;
  r.condition = make_apply("any-of", function_ref("string-equal"), lit("doctor"),
                      designator(Category::kSubject, attrs::kRole, DataType::kString));
  p.rules.push_back(std::move(r));
  store->add(std::move(p));

  MapResolver resolver;
  resolver.attributes[attrs::kRole] = Bag(AttributeValue("doctor"));
  Pdp pdp(store);
  pdp.set_resolver(&resolver);

  auto req = RequestContext::make("alice", "r", "read");
  req.add(Category::kSubject, attrs::kRole, AttributeValue("janitor"));
  EXPECT_TRUE(pdp.evaluate(req).is_not_applicable());
  EXPECT_EQ(resolver.calls, 0);  // never consulted
}

TEST(PdpTest, EvaluateBatchMatchesSingleEvaluation) {
  auto store = std::make_shared<PolicyStore>();
  store->add(resource_policy("doc", Effect::kPermit, "permit-doc"));
  store->add(resource_policy("vault", Effect::kDeny, "deny-vault"));
  Pdp pdp(store);

  const std::vector<RequestContext> requests = {
      RequestContext::make("a", "doc", "read"),
      RequestContext::make("a", "vault", "read"),
      RequestContext::make("a", "other", "read"),
  };
  const auto results = pdp.evaluate_batch(requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].decision.is_permit());
  EXPECT_TRUE(results[1].decision.is_deny());
  EXPECT_TRUE(results[2].decision.is_not_applicable());
  EXPECT_EQ(pdp.evaluation_count(), 3u);
}

/// An AttributeResolver that re-enters the same Pdp (decides "role" by
/// asking whether the subject may read the role registry). The nested
/// evaluation must not clobber the outer one's candidate scratch.
class ReentrantResolver final : public AttributeResolver {
 public:
  explicit ReentrantResolver(Pdp& pdp) : pdp_(pdp) {}

  std::optional<Bag> resolve(Category category, const std::string& id,
                             const RequestContext&) override {
    if (category != Category::kSubject || id != attrs::kRole) return std::nullopt;
    const Decision nested =
        pdp_.evaluate(RequestContext::make("resolver", "role-registry", "read"));
    return Bag(AttributeValue(nested.is_permit() ? "admin" : "guest"));
  }

 private:
  Pdp& pdp_;
};

TEST(PdpTest, ResolverMayReenterThePdp) {
  auto store = std::make_shared<PolicyStore>();
  store->add(resource_policy("role-registry", Effect::kPermit, "registry-open"));

  // "secret" is only readable by role=admin, which the resolver supplies
  // after recursively consulting the same PDP.
  Policy secret;
  secret.policy_id = "secret-policy";
  secret.target_spec.require(Category::kResource, attrs::kResourceId,
                             AttributeValue("secret"));
  Rule admin_only;
  admin_only.id = "admins";
  admin_only.effect = Effect::kPermit;
  Target t;
  t.require(Category::kSubject, attrs::kRole, AttributeValue("admin"));
  admin_only.target = std::move(t);
  secret.rules.push_back(std::move(admin_only));
  store->add(std::move(secret));

  Pdp pdp(store);
  ReentrantResolver resolver(pdp);
  pdp.set_resolver(&resolver);

  const Decision d = pdp.evaluate(RequestContext::make("alice", "secret", "read"));
  EXPECT_TRUE(d.is_permit());
  // And the outer PDP still works normally afterwards.
  EXPECT_TRUE(
      pdp.evaluate(RequestContext::make("a", "role-registry", "read")).is_permit());
}

TEST(PdpMetricsTest, CountersPopulated) {
  auto store = std::make_shared<PolicyStore>();
  store->add(resource_policy("doc", Effect::kPermit, "p"));
  Pdp pdp(store);
  const PdpResult result =
      pdp.evaluate_with_metrics(RequestContext::make("a", "doc", "read"));
  EXPECT_EQ(result.metrics.policies_evaluated, 1u);
  EXPECT_EQ(result.metrics.rules_evaluated, 1u);
  EXPECT_GT(result.metrics.attribute_lookups, 0u);
  EXPECT_EQ(pdp.evaluation_count(), 1u);
}

}  // namespace
}  // namespace mdac::core
