// Randomised property tests over generated policy trees: serialisation
// round-trips preserve decisions, validation never crashes, the PDP's
// target index never changes outcomes, and cloning is behaviour-
// preserving. Each seed builds a different corpus; failures print the
// seed for replay.
#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "core/functions.hpp"
#include "core/pdp.hpp"
#include "core/serialization.hpp"
#include "core/validate.hpp"

namespace mdac::core {
namespace {

constexpr int kSubjects = 4;
constexpr int kResources = 5;
constexpr int kActions = 3;
constexpr int kRoles = 3;

class PolicyGenerator {
 public:
  explicit PolicyGenerator(unsigned seed) : rng_(seed) {}

  Policy policy(const std::string& id) {
    Policy p;
    p.policy_id = id;
    p.rule_combining = pick_algorithm();
    if (chance(0.7)) {
      p.target_spec.require(Category::kResource, attrs::kResourceId,
                            AttributeValue(resource()));
    }
    const int n_rules = 1 + static_cast<int>(rng_() % 4);
    for (int i = 0; i < n_rules; ++i) {
      p.rules.push_back(rule(id + ":r" + std::to_string(i)));
    }
    if (chance(0.3)) {
      ObligationExpr ob;
      ob.id = "audit";
      ob.fulfill_on = chance(0.5) ? Effect::kPermit : Effect::kDeny;
      AttributeAssignmentExpr a;
      a.attribute_id = "note";
      a.expr = lit("generated");
      ob.assignments.push_back(std::move(a));
      p.obligations.push_back(std::move(ob));
    }
    return p;
  }

  PolicySet policy_set(const std::string& id, int depth) {
    PolicySet ps;
    ps.policy_set_id = id;
    ps.policy_combining = pick_algorithm();
    const int n_children = 1 + static_cast<int>(rng_() % 3);
    for (int i = 0; i < n_children; ++i) {
      const std::string child_id = id + "." + std::to_string(i);
      if (depth > 0 && chance(0.35)) {
        ps.add(policy_set(child_id, depth - 1));
      } else {
        ps.add(policy(child_id));
      }
    }
    return ps;
  }

  RequestContext request() {
    RequestContext req = RequestContext::make(subject(), resource(), action());
    if (chance(0.8)) {
      req.add(Category::kSubject, attrs::kRole, AttributeValue(role()));
    }
    if (chance(0.3)) {  // second role
      req.add(Category::kSubject, attrs::kRole, AttributeValue(role()));
    }
    return req;
  }

 private:
  Rule rule(const std::string& id) {
    Rule r;
    r.id = id;
    r.effect = chance(0.5) ? Effect::kPermit : Effect::kDeny;
    if (chance(0.5)) {
      Target t;
      t.require(Category::kAction, attrs::kActionId, AttributeValue(action()));
      if (chance(0.4)) {
        t.require_any(Category::kSubject, attrs::kSubjectId,
                      {AttributeValue(subject()), AttributeValue(subject())});
      }
      r.target = std::move(t);
    }
    if (chance(0.5)) {
      r.condition = condition();
    }
    return r;
  }

  ExprPtr condition() {
    switch (rng_() % 4) {
      case 0:
        return make_apply("any-of", function_ref("string-equal"), lit(role()),
                          designator(Category::kSubject, attrs::kRole,
                                     DataType::kString));
      case 1:
        return make_apply(
            "not", make_apply("any-of", function_ref("string-equal"),
                              lit(subject()),
                              designator(Category::kSubject, attrs::kSubjectId,
                                         DataType::kString)));
      case 2:
        return make_apply(
            "integer-greater-than",
            make_apply("bag-size", designator(Category::kSubject, attrs::kRole,
                                              DataType::kString)),
            lit(std::int64_t{0}));
      default:
        return make_apply(
            "and",
            make_apply("any-of", function_ref("string-equal"), lit(action()),
                       designator(Category::kAction, attrs::kActionId,
                                  DataType::kString)),
            lit(true));
    }
  }

  bool chance(double p) { return std::uniform_real_distribution<>(0, 1)(rng_) < p; }
  std::string subject() { return "s" + std::to_string(rng_() % kSubjects); }
  std::string resource() { return "res-" + std::to_string(rng_() % kResources); }
  std::string action() { return "a" + std::to_string(rng_() % kActions); }
  std::string role() { return "role-" + std::to_string(rng_() % kRoles); }
  std::string pick_algorithm() {
    static const char* algorithms[] = {
        "deny-overrides", "permit-overrides", "first-applicable",
        "deny-unless-permit", "permit-unless-deny"};
    return algorithms[rng_() % 5];
  }

  std::mt19937 rng_;
};

Decision decide(const PolicyTreeNode& node, const RequestContext& req) {
  EvaluationContext ctx(req, FunctionRegistry::standard());
  return node.evaluate(ctx);
}

class PropertySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PropertySweep, SerialisationPreservesDecisions) {
  PolicyGenerator gen(GetParam());
  const PolicySet original = gen.policy_set("root", 2);
  const std::string wire = node_to_string(original);
  const PolicyNodePtr back = node_from_string(wire);

  for (int i = 0; i < 40; ++i) {
    const RequestContext req = gen.request();
    const Decision a = decide(original, req);
    const Decision b = decide(*back, req);
    EXPECT_EQ(a.type, b.type) << "seed " << GetParam() << " request " << i;
    EXPECT_EQ(a.extent, b.extent);
    EXPECT_EQ(a.obligations, b.obligations);
  }
}

TEST_P(PropertySweep, DoubleSerialisationIsFixpoint) {
  PolicyGenerator gen(GetParam());
  const PolicySet original = gen.policy_set("root", 2);
  const std::string once = node_to_string(original);
  const std::string twice = node_to_string(*node_from_string(once));
  EXPECT_EQ(once, twice) << "seed " << GetParam();
}

TEST_P(PropertySweep, CloneIsBehaviourPreserving) {
  PolicyGenerator gen(GetParam());
  const PolicySet original = gen.policy_set("root", 2);
  const PolicySet copy = original.clone();
  for (int i = 0; i < 20; ++i) {
    const RequestContext req = gen.request();
    EXPECT_EQ(decide(original, req).type, decide(copy, req).type)
        << "seed " << GetParam();
  }
}

TEST_P(PropertySweep, GeneratedPoliciesValidateCleanly) {
  PolicyGenerator gen(GetParam());
  const PolicySet root = gen.policy_set("root", 2);
  const ValidationReport report = validate(root);
  // The generator only emits well-formed constructs; errors would mean
  // either the generator or the validator is wrong.
  EXPECT_TRUE(report.ok()) << "seed " << GetParam() << ": "
                           << (report.findings.empty()
                                   ? ""
                                   : report.findings[0].message);
}

TEST_P(PropertySweep, TargetIndexNeverChangesOutcomes) {
  PolicyGenerator gen(GetParam());
  auto store_indexed = std::make_shared<PolicyStore>();
  auto store_scan = std::make_shared<PolicyStore>();
  for (int i = 0; i < 8; ++i) {
    const Policy p = gen.policy("p" + std::to_string(i));
    store_indexed->add(p.clone());
    store_scan->add(p.clone());
  }
  Pdp indexed(store_indexed, PdpConfig{"deny-overrides", true});
  Pdp scanning(store_scan, PdpConfig{"deny-overrides", false});
  for (int i = 0; i < 40; ++i) {
    const RequestContext req = gen.request();
    const Decision a = indexed.evaluate(req);
    const Decision b = scanning.evaluate(req);
    EXPECT_EQ(a.type, b.type) << "seed " << GetParam() << " request " << i;
  }
}

TEST_P(PropertySweep, EvaluationIsDeterministic) {
  PolicyGenerator gen(GetParam());
  const PolicySet root = gen.policy_set("root", 2);
  const RequestContext req = gen.request();
  const Decision first = decide(root, req);
  for (int i = 0; i < 5; ++i) {
    const Decision again = decide(root, req);
    EXPECT_EQ(first.type, again.type);
    EXPECT_EQ(first.obligations, again.obligations);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Range(0u, 40u));

}  // namespace
}  // namespace mdac::core
