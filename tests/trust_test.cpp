#include <gtest/gtest.h>

#include "trust/negotiation.hpp"

namespace mdac::trust {
namespace {

// ---------------------------------------------------------------------
// DisclosurePolicy
// ---------------------------------------------------------------------

TEST(DisclosurePolicyTest, AlwaysIsSatisfied) {
  EXPECT_TRUE(DisclosurePolicy::always().satisfied_by({}));
}

TEST(DisclosurePolicyTest, CredentialRequiresDisclosure) {
  const auto p = DisclosurePolicy::credential("employee-id");
  EXPECT_FALSE(p.satisfied_by({}));
  EXPECT_TRUE(p.satisfied_by({"employee-id"}));
  EXPECT_FALSE(p.satisfied_by({"other"}));
}

TEST(DisclosurePolicyTest, AndOrSemantics) {
  const auto both = DisclosurePolicy::all_of({DisclosurePolicy::credential("a"),
                                              DisclosurePolicy::credential("b")});
  EXPECT_FALSE(both.satisfied_by({"a"}));
  EXPECT_TRUE(both.satisfied_by({"a", "b"}));

  const auto either = DisclosurePolicy::any_of({DisclosurePolicy::credential("a"),
                                                DisclosurePolicy::credential("b")});
  EXPECT_TRUE(either.satisfied_by({"b"}));
  EXPECT_FALSE(either.satisfied_by({"c"}));
}

TEST(DisclosurePolicyTest, NestedTrees) {
  // (a AND (b OR c))
  const auto p = DisclosurePolicy::all_of(
      {DisclosurePolicy::credential("a"),
       DisclosurePolicy::any_of({DisclosurePolicy::credential("b"),
                                 DisclosurePolicy::credential("c")})});
  EXPECT_TRUE(p.satisfied_by({"a", "c"}));
  EXPECT_FALSE(p.satisfied_by({"b", "c"}));
  EXPECT_EQ(p.mentioned_credentials(), (std::set<std::string>{"a", "b", "c"}));
}

// ---------------------------------------------------------------------
// Negotiation scenarios
// ---------------------------------------------------------------------

/// The classic stranger scenario: a student wants a discounted resource;
/// the provider wants proof of enrolment; the student only reveals the
/// enrolment credential to parties showing a business license; the
/// provider's license is freely available.
std::pair<Party, Party> student_scenario() {
  Party student;
  student.name = "student";
  student.credentials = {"enrolment-cert"};
  student.release_policies["enrolment-cert"] =
      DisclosurePolicy::credential("business-license");

  Party shop;
  shop.name = "shop";
  shop.credentials = {"business-license"};
  shop.resource_policies["discount"] = DisclosurePolicy::credential("enrolment-cert");
  return {student, shop};
}

TEST(NegotiationTest, IterativeExchangeSucceeds) {
  const auto [student, shop] = student_scenario();
  const NegotiationResult r = negotiate(student, shop, "discount", Strategy::kEager);
  EXPECT_TRUE(r.success);
  EXPECT_GE(r.rounds, 2u);  // license first, then enrolment
  EXPECT_TRUE(r.disclosed_by_provider.count("business-license"));
  EXPECT_TRUE(r.disclosed_by_requester.count("enrolment-cert"));
}

TEST(NegotiationTest, ParsimoniousMatchesEagerOnMinimalScenario) {
  const auto [student, shop] = student_scenario();
  const auto eager = negotiate(student, shop, "discount", Strategy::kEager);
  const auto pars = negotiate(student, shop, "discount", Strategy::kParsimonious);
  EXPECT_TRUE(eager.success);
  EXPECT_TRUE(pars.success);
}

TEST(NegotiationTest, ParsimoniousDisclosesLessThanEager) {
  auto [student, shop] = student_scenario();
  // The student also carries irrelevant freely-releasable credentials.
  student.credentials.insert("gym-membership");
  student.credentials.insert("library-card");

  const auto eager = negotiate(student, shop, "discount", Strategy::kEager);
  const auto pars = negotiate(student, shop, "discount", Strategy::kParsimonious);
  ASSERT_TRUE(eager.success);
  ASSERT_TRUE(pars.success);
  // Eager leaks the irrelevant credentials; parsimonious does not.
  EXPECT_GT(eager.disclosed_by_requester.size(), pars.disclosed_by_requester.size());
  EXPECT_FALSE(pars.disclosed_by_requester.count("gym-membership"));
}

TEST(NegotiationTest, FailsAtFixpointWhenLocked) {
  // Deadlock: each side demands the other's credential first.
  Party a;
  a.name = "a";
  a.credentials = {"cred-a"};
  a.release_policies["cred-a"] = DisclosurePolicy::credential("cred-b");
  Party b;
  b.name = "b";
  b.credentials = {"cred-b"};
  b.release_policies["cred-b"] = DisclosurePolicy::credential("cred-a");
  b.resource_policies["res"] = DisclosurePolicy::credential("cred-a");

  const NegotiationResult r = negotiate(a, b, "res", Strategy::kEager);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("fixpoint"), std::string::npos);
}

TEST(NegotiationTest, MissingCredentialFails) {
  auto [student, shop] = student_scenario();
  student.credentials.clear();  // cannot prove enrolment
  const NegotiationResult r = negotiate(student, shop, "discount", Strategy::kEager);
  EXPECT_FALSE(r.success);
}

TEST(NegotiationTest, UnknownResourceFailsSafe) {
  const auto [student, shop] = student_scenario();
  const NegotiationResult r = negotiate(student, shop, "ghost", Strategy::kEager);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("no policy"), std::string::npos);
}

TEST(NegotiationTest, OpenResourceNeedsNoDisclosure) {
  Party requester;
  requester.name = "anyone";
  Party provider;
  provider.name = "provider";
  provider.resource_policies["public-page"] = DisclosurePolicy::always();
  const NegotiationResult r =
      negotiate(requester, provider, "public-page", Strategy::kEager);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_TRUE(r.disclosed_by_requester.empty());
}

TEST(NegotiationTest, AlternativeBranchSatisfiesOrPolicy) {
  Party requester;
  requester.name = "visitor";
  requester.credentials = {"press-pass"};  // holds only one alternative
  Party provider;
  provider.name = "venue";
  provider.resource_policies["backstage"] =
      DisclosurePolicy::any_of({DisclosurePolicy::credential("staff-badge"),
                                DisclosurePolicy::credential("press-pass")});
  const NegotiationResult r =
      negotiate(requester, provider, "backstage", Strategy::kParsimonious);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.disclosed_by_requester.count("press-pass"));
}

class ChainDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChainDepthSweep, DeepAlternatingChainsTerminate) {
  // requester needs to show c0; c0 is guarded by provider's p0; p0 by
  // requester's c1; ... depth layers of alternating requirements.
  const int depth = GetParam();
  Party requester;
  requester.name = "r";
  Party provider;
  provider.name = "p";
  for (int i = 0; i < depth; ++i) {
    const std::string c = "c" + std::to_string(i);
    const std::string p = "p" + std::to_string(i);
    requester.credentials.insert(c);
    provider.credentials.insert(p);
    requester.release_policies[c] = DisclosurePolicy::credential(p);
    if (i + 1 < depth) {
      provider.release_policies[p] =
          DisclosurePolicy::credential("c" + std::to_string(i + 1));
    }
  }
  provider.resource_policies["res"] = DisclosurePolicy::credential("c0");

  for (const Strategy s : {Strategy::kEager, Strategy::kParsimonious}) {
    const NegotiationResult r = negotiate(requester, provider, "res", s, 1000);
    EXPECT_TRUE(r.success) << "depth " << depth;
    EXPECT_GE(r.rounds, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, ChainDepthSweep, ::testing::Values(1, 2, 5, 10, 25));

}  // namespace
}  // namespace mdac::trust
