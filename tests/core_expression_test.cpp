#include <gtest/gtest.h>

#include "core/expression.hpp"
#include "core/functions.hpp"

namespace mdac::core {
namespace {

/// Evaluates an expression against an optionally pre-populated request.
ExprResult eval(const ExprPtr& expr, const RequestContext& request = {}) {
  EvaluationContext ctx(request, FunctionRegistry::standard());
  return expr->evaluate(ctx);
}

AttributeValue single(const ExprResult& r) {
  EXPECT_TRUE(r.ok()) << r.status.message;
  EXPECT_EQ(r.bag.size(), 1u);
  return r.bag.at(0);
}

// ---------------------------------------------------------------------
// Literals & designators
// ---------------------------------------------------------------------

TEST(ExpressionTest, LiteralEvaluatesToItself) {
  EXPECT_EQ(single(eval(lit("hello"))), AttributeValue("hello"));
  EXPECT_EQ(single(eval(lit(std::int64_t{42}))), AttributeValue(std::int64_t{42}));
}

TEST(ExpressionTest, DesignatorFindsRequestAttribute) {
  RequestContext req;
  req.add(Category::kSubject, "role", AttributeValue("doctor"));
  const auto expr = designator(Category::kSubject, "role", DataType::kString);
  const ExprResult r = eval(expr, req);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.bag.contains(AttributeValue("doctor")));
}

TEST(ExpressionTest, DesignatorFiltersByType) {
  RequestContext req;
  req.add(Category::kSubject, "level", AttributeValue(std::int64_t{3}));
  req.add(Category::kSubject, "level", AttributeValue("three"));
  const auto expr = designator(Category::kSubject, "level", DataType::kInteger);
  const ExprResult r = eval(expr, req);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.bag.size(), 1u);
  EXPECT_TRUE(r.bag.at(0).is_integer());
}

TEST(ExpressionTest, MissingOptionalAttributeYieldsEmptyBag) {
  const auto expr = designator(Category::kSubject, "absent", DataType::kString);
  const ExprResult r = eval(expr);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.bag.empty());
}

TEST(ExpressionTest, MissingMandatoryAttributeIsError) {
  const auto expr = designator(Category::kSubject, "absent", DataType::kString,
                               /*must_be_present=*/true);
  const ExprResult r = eval(expr);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code, StatusCode::kMissingAttribute);
}

// ---------------------------------------------------------------------
// Function application basics
// ---------------------------------------------------------------------

TEST(ExpressionTest, UnknownFunctionIsError) {
  const auto expr = make_apply("no-such-function", lit("x"));
  const ExprResult r = eval(expr);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code, StatusCode::kProcessingError);
}

TEST(ExpressionTest, ArityMismatchIsError) {
  const auto expr = make_apply("string-equal", lit("only-one"));
  EXPECT_FALSE(eval(expr).ok());
}

TEST(ExpressionTest, TypeMismatchIsError) {
  const auto expr = make_apply("integer-add", lit(std::int64_t{1}), lit("two"));
  const ExprResult r = eval(expr);
  EXPECT_FALSE(r.ok());
}

TEST(ExpressionTest, ErrorsPropagateThroughNesting) {
  // inner designator fails (mandatory, absent) -> whole tree fails
  const auto expr = make_apply(
      "and", lit(true),
      make_apply("string-equal", lit("x"),
            make_apply("one-and-only", designator(Category::kSubject, "absent",
                                             DataType::kString, true))));
  const ExprResult r = eval(expr);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code, StatusCode::kMissingAttribute);
}

TEST(ExpressionTest, CloneProducesEqualBehaviour) {
  RequestContext req;
  req.add(Category::kSubject, "n", AttributeValue(std::int64_t{21}));
  const auto expr = make_apply(
      "integer-add",
      make_apply("one-and-only", designator(Category::kSubject, "n", DataType::kInteger)),
      lit(std::int64_t{21}));
  const auto cloned = expr->clone();
  EXPECT_EQ(single(eval(expr, req)), single(eval(cloned, req)));
}

// ---------------------------------------------------------------------
// Function library sweep: each (function, args, expected) row is one case.
// ---------------------------------------------------------------------

struct FnCase {
  std::string name;          // for diagnostics
  ExprPtr (*build)();        // builds the expression
  AttributeValue expected;
};

ExprPtr b_string_equal_true() { return make_apply("string-equal", lit("a"), lit("a")); }
ExprPtr b_string_equal_false() { return make_apply("string-equal", lit("a"), lit("b")); }
ExprPtr b_bool_equal() { return make_apply("boolean-equal", lit(true), lit(true)); }
ExprPtr b_int_equal() {
  return make_apply("integer-equal", lit(std::int64_t{3}), lit(std::int64_t{3}));
}
ExprPtr b_int_lt() {
  return make_apply("integer-less-than", lit(std::int64_t{2}), lit(std::int64_t{3}));
}
ExprPtr b_int_le_eq() {
  return make_apply("integer-less-than-or-equal", lit(std::int64_t{3}), lit(std::int64_t{3}));
}
ExprPtr b_int_gt_false() {
  return make_apply("integer-greater-than", lit(std::int64_t{2}), lit(std::int64_t{3}));
}
ExprPtr b_int_ge() {
  return make_apply("integer-greater-than-or-equal", lit(std::int64_t{4}), lit(std::int64_t{3}));
}
ExprPtr b_double_lt() {
  return make_apply("double-less-than", lit(AttributeValue(1.5)), lit(AttributeValue(2.5)));
}
ExprPtr b_string_lt() { return make_apply("string-less-than", lit("abc"), lit("abd")); }
ExprPtr b_time_lt() {
  return make_apply("time-less-than", lit(AttributeValue(TimeValue{100})),
               lit(AttributeValue(TimeValue{200})));
}
ExprPtr b_time_in_range() {
  return make_apply("time-in-range", lit(AttributeValue(TimeValue{150})),
               lit(AttributeValue(TimeValue{100})), lit(AttributeValue(TimeValue{200})));
}
ExprPtr b_time_in_range_edge() {
  return make_apply("time-in-range", lit(AttributeValue(TimeValue{200})),
               lit(AttributeValue(TimeValue{100})), lit(AttributeValue(TimeValue{200})));
}
ExprPtr b_int_add() {
  return make_apply("integer-add", lit(std::int64_t{1}), lit(std::int64_t{2}),
               lit(std::int64_t{3}));
}
ExprPtr b_int_sub() {
  return make_apply("integer-subtract", lit(std::int64_t{5}), lit(std::int64_t{3}));
}
ExprPtr b_int_mul() {
  return make_apply("integer-multiply", lit(std::int64_t{4}), lit(std::int64_t{5}));
}
ExprPtr b_int_div() {
  return make_apply("integer-divide", lit(std::int64_t{7}), lit(std::int64_t{2}));
}
ExprPtr b_int_mod() {
  return make_apply("integer-mod", lit(std::int64_t{7}), lit(std::int64_t{3}));
}
ExprPtr b_int_abs() { return make_apply("integer-abs", lit(std::int64_t{-9})); }
ExprPtr b_double_add() {
  return make_apply("double-add", lit(AttributeValue(0.5)), lit(AttributeValue(0.25)));
}
ExprPtr b_round() { return make_apply("round", lit(AttributeValue(2.6))); }
ExprPtr b_floor() { return make_apply("floor", lit(AttributeValue(2.6))); }
ExprPtr b_int_to_double() { return make_apply("integer-to-double", lit(std::int64_t{2})); }
ExprPtr b_double_to_int() { return make_apply("double-to-integer", lit(AttributeValue(2.9))); }
ExprPtr b_string_to_int() { return make_apply("string-to-integer", lit("-17")); }
ExprPtr b_int_to_string() { return make_apply("integer-to-string", lit(std::int64_t{17})); }
ExprPtr b_and_true() { return make_apply("and", lit(true), lit(true)); }
ExprPtr b_and_false() { return make_apply("and", lit(true), lit(false)); }
ExprPtr b_and_empty() { return make_apply_vec("and", {}); }
ExprPtr b_or_true() { return make_apply("or", lit(false), lit(true)); }
ExprPtr b_or_empty() { return make_apply_vec("or", {}); }
ExprPtr b_not() { return make_apply("not", lit(false)); }
ExprPtr b_n_of() {
  return make_apply("n-of", lit(std::int64_t{2}), lit(true), lit(false), lit(true));
}
ExprPtr b_n_of_fail() {
  return make_apply("n-of", lit(std::int64_t{3}), lit(true), lit(false), lit(true));
}
ExprPtr b_concat() { return make_apply("string-concatenate", lit("foo"), lit("bar")); }
ExprPtr b_contains() { return make_apply("string-contains", lit("foobar"), lit("oba")); }
ExprPtr b_starts() { return make_apply("string-starts-with", lit("foobar"), lit("foo")); }
ExprPtr b_ends() { return make_apply("string-ends-with", lit("foobar"), lit("bar")); }
ExprPtr b_normalize() { return make_apply("string-normalize-space", lit("  x  ")); }
ExprPtr b_lower() { return make_apply("string-to-lower", lit("AbC")); }
ExprPtr b_length() { return make_apply("string-length", lit("hello")); }
ExprPtr b_regex() { return make_apply("regexp-match", lit("^d.*r$"), lit("doctor")); }
ExprPtr b_one_and_only() {
  return make_apply("one-and-only", lit_bag(Bag(AttributeValue("only"))));
}
ExprPtr b_bag_size() {
  return make_apply("bag-size",
               lit_bag(Bag::of({AttributeValue("a"), AttributeValue("b")})));
}
ExprPtr b_is_in() {
  return make_apply("is-in", lit("b"),
               lit_bag(Bag::of({AttributeValue("a"), AttributeValue("b")})));
}
ExprPtr b_subset() {
  return make_apply("subset", lit_bag(Bag::of({AttributeValue("a")})),
               lit_bag(Bag::of({AttributeValue("a"), AttributeValue("b")})));
}
ExprPtr b_set_equals() {
  return make_apply("set-equals",
               lit_bag(Bag::of({AttributeValue("a"), AttributeValue("b")})),
               lit_bag(Bag::of({AttributeValue("b"), AttributeValue("a")})));
}
ExprPtr b_at_least_one() {
  return make_apply("at-least-one-member-of",
               lit_bag(Bag::of({AttributeValue("x"), AttributeValue("b")})),
               lit_bag(Bag::of({AttributeValue("b")})));
}

class FunctionSweep : public ::testing::TestWithParam<FnCase> {};

TEST_P(FunctionSweep, EvaluatesToExpected) {
  const FnCase& c = GetParam();
  EXPECT_EQ(single(eval(c.build())), c.expected) << c.name;
}

const AttributeValue T(true);
const AttributeValue F(false);

INSTANTIATE_TEST_SUITE_P(
    Library, FunctionSweep,
    ::testing::Values(
        FnCase{"string-equal-true", b_string_equal_true, T},
        FnCase{"string-equal-false", b_string_equal_false, F},
        FnCase{"boolean-equal", b_bool_equal, T},
        FnCase{"integer-equal", b_int_equal, T},
        FnCase{"integer-less-than", b_int_lt, T},
        FnCase{"integer-le-equal", b_int_le_eq, T},
        FnCase{"integer-gt-false", b_int_gt_false, F},
        FnCase{"integer-ge", b_int_ge, T},
        FnCase{"double-less-than", b_double_lt, T},
        FnCase{"string-less-than", b_string_lt, T},
        FnCase{"time-less-than", b_time_lt, T},
        FnCase{"time-in-range", b_time_in_range, T},
        FnCase{"time-in-range-edge", b_time_in_range_edge, T},
        FnCase{"integer-add", b_int_add, AttributeValue(std::int64_t{6})},
        FnCase{"integer-subtract", b_int_sub, AttributeValue(std::int64_t{2})},
        FnCase{"integer-multiply", b_int_mul, AttributeValue(std::int64_t{20})},
        FnCase{"integer-divide", b_int_div, AttributeValue(std::int64_t{3})},
        FnCase{"integer-mod", b_int_mod, AttributeValue(std::int64_t{1})},
        FnCase{"integer-abs", b_int_abs, AttributeValue(std::int64_t{9})},
        FnCase{"double-add", b_double_add, AttributeValue(0.75)},
        FnCase{"round", b_round, AttributeValue(3.0)},
        FnCase{"floor", b_floor, AttributeValue(2.0)},
        FnCase{"integer-to-double", b_int_to_double, AttributeValue(2.0)},
        FnCase{"double-to-integer", b_double_to_int, AttributeValue(std::int64_t{2})},
        FnCase{"string-to-integer", b_string_to_int, AttributeValue(std::int64_t{-17})},
        FnCase{"integer-to-string", b_int_to_string, AttributeValue("17")},
        FnCase{"and-true", b_and_true, T}, FnCase{"and-false", b_and_false, F},
        FnCase{"and-empty", b_and_empty, T}, FnCase{"or-true", b_or_true, T},
        FnCase{"or-empty", b_or_empty, F}, FnCase{"not", b_not, T},
        FnCase{"n-of", b_n_of, T}, FnCase{"n-of-fail", b_n_of_fail, F},
        FnCase{"concat", b_concat, AttributeValue("foobar")},
        FnCase{"contains", b_contains, T}, FnCase{"starts-with", b_starts, T},
        FnCase{"ends-with", b_ends, T},
        FnCase{"normalize-space", b_normalize, AttributeValue("x")},
        FnCase{"to-lower", b_lower, AttributeValue("abc")},
        FnCase{"length", b_length, AttributeValue(std::int64_t{5})},
        FnCase{"regexp", b_regex, T},
        FnCase{"one-and-only", b_one_and_only, AttributeValue("only")},
        FnCase{"bag-size", b_bag_size, AttributeValue(std::int64_t{2})},
        FnCase{"is-in", b_is_in, T}, FnCase{"subset", b_subset, T},
        FnCase{"set-equals", b_set_equals, T},
        FnCase{"at-least-one", b_at_least_one, T}),
    [](const ::testing::TestParamInfo<FnCase>& info) {
      std::string n = info.param.name;
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

// ---------------------------------------------------------------------
// Division / numeric edge cases
// ---------------------------------------------------------------------

TEST(ExpressionTest, DivisionByZeroIsError) {
  EXPECT_FALSE(
      eval(make_apply("integer-divide", lit(std::int64_t{1}), lit(std::int64_t{0}))).ok());
  EXPECT_FALSE(
      eval(make_apply("integer-mod", lit(std::int64_t{1}), lit(std::int64_t{0}))).ok());
  EXPECT_FALSE(
      eval(make_apply("double-divide", lit(AttributeValue(1.0)), lit(AttributeValue(0.0))))
          .ok());
}

TEST(ExpressionTest, BadRegexIsErrorNotCrash) {
  EXPECT_FALSE(eval(make_apply("regexp-match", lit("[unclosed"), lit("x"))).ok());
}

TEST(ExpressionTest, OneAndOnlyOnNonSingletonFails) {
  EXPECT_FALSE(eval(make_apply("one-and-only",
                          lit_bag(Bag::of({AttributeValue("a"), AttributeValue("b")}))))
                   .ok());
  EXPECT_FALSE(eval(make_apply("one-and-only", lit_bag(Bag()))).ok());
}

// ---------------------------------------------------------------------
// Higher-order functions
// ---------------------------------------------------------------------

TEST(HigherOrderTest, AnyOfFindsMatchInBag) {
  RequestContext req;
  req.add(Category::kSubject, "role", AttributeValue("nurse"));
  req.add(Category::kSubject, "role", AttributeValue("doctor"));
  const auto expr =
      make_apply("any-of", function_ref("string-equal"), lit("doctor"),
            designator(Category::kSubject, "role", DataType::kString));
  EXPECT_EQ(single(eval(expr, req)), AttributeValue(true));
}

TEST(HigherOrderTest, AnyOfEmptyBagIsFalse) {
  const auto expr = make_apply("any-of", function_ref("string-equal"), lit("doctor"),
                          lit_bag(Bag()));
  EXPECT_EQ(single(eval(expr)), AttributeValue(false));
}

TEST(HigherOrderTest, AllOfRequiresEveryElement) {
  const auto all_match =
      make_apply("all-of", function_ref("string-starts-with"),
            lit_bag(Bag::of({AttributeValue("ab"), AttributeValue("ax")})));
  // all-of(f, bag) with unary-style usage is not the XACML shape; use the
  // canonical (f, value, bag) form instead:
  const auto expr = make_apply(
      "all-of", function_ref("integer-greater-than"), lit(std::int64_t{10}),
      lit_bag(Bag::of({AttributeValue(std::int64_t{1}), AttributeValue(std::int64_t{5})})));
  EXPECT_EQ(single(eval(expr)), AttributeValue(true));
  (void)all_match;
}

TEST(HigherOrderTest, AllOfEmptyBagIsTrue) {
  const auto expr = make_apply("all-of", function_ref("string-equal"), lit("x"),
                          lit_bag(Bag()));
  EXPECT_EQ(single(eval(expr)), AttributeValue(true));
}

TEST(HigherOrderTest, AnyOfAnyCrossProduct) {
  const auto expr = make_apply(
      "any-of-any", function_ref("string-equal"),
      lit_bag(Bag::of({AttributeValue("a"), AttributeValue("b")})),
      lit_bag(Bag::of({AttributeValue("c"), AttributeValue("b")})));
  EXPECT_EQ(single(eval(expr)), AttributeValue(true));
}

TEST(HigherOrderTest, MapTransformsBag) {
  const auto expr = make_apply(
      "map", function_ref("string-to-lower"),
      lit_bag(Bag::of({AttributeValue("A"), AttributeValue("B")})));
  const ExprResult r = eval(expr);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.bag.set_equals(Bag::of({AttributeValue("a"), AttributeValue("b")})));
}

TEST(HigherOrderTest, FirstArgumentMustBeFunctionRef) {
  const auto expr = make_apply("any-of", lit("not-a-function"), lit("x"), lit_bag(Bag()));
  EXPECT_FALSE(eval(expr).ok());
}

TEST(HigherOrderTest, InnerFunctionMayNotBeHigherOrder) {
  const auto expr = make_apply("any-of", function_ref("any-of"), lit("x"), lit_bag(Bag()));
  EXPECT_FALSE(eval(expr).ok());
}

TEST(HigherOrderTest, FunctionRefOutsideApplyIsError) {
  const auto expr = function_ref("string-equal");
  EXPECT_FALSE(eval(expr).ok());
}

// ---------------------------------------------------------------------
// Registry extensibility
// ---------------------------------------------------------------------

TEST(RegistryTest, CustomFunctionCanBeRegistered) {
  FunctionRegistry reg = FunctionRegistry::standard_copy();
  FunctionDef def;
  def.name = "always-42";
  def.arity = 0;
  def.invoke = [](EvaluationContext&, const std::vector<Bag>&) {
    return ExprResult::single(AttributeValue(std::int64_t{42}));
  };
  reg.add(std::move(def));

  RequestContext req;
  EvaluationContext ctx(req, reg);
  const auto expr = make_apply_vec("always-42", {});
  const ExprResult r = expr->evaluate(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.bag.at(0).as_integer(), 42);
}

TEST(RegistryTest, StandardHasExpectedSize) {
  // Guards against accidentally dropping registrations.
  EXPECT_GE(FunctionRegistry::standard().size(), 50u);
}

TEST(RegistryTest, MetricsCountFunctionInvocations) {
  RequestContext req;
  EvaluationContext ctx(req, FunctionRegistry::standard());
  const auto expr = make_apply("and", lit(true), make_apply("not", lit(false)));
  (void)expr->evaluate(ctx);
  EXPECT_EQ(ctx.metrics().functions_invoked, 2u);
}

}  // namespace
}  // namespace mdac::core
