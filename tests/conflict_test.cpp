#include <gtest/gtest.h>

#include <random>

#include "conflict/analysis.hpp"
#include "core/functions.hpp"

namespace mdac::conflict {
namespace {

core::Policy make_policy(const std::string& id, core::Effect effect,
                         const std::string& subject, const std::string& resource,
                         const std::string& action) {
  core::Policy p;
  p.policy_id = id;
  if (!resource.empty()) {
    p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                          core::AttributeValue(resource));
  }
  core::Rule r;
  r.id = id + "-rule";
  r.effect = effect;
  core::Target t;
  if (!subject.empty()) {
    t.require(core::Category::kSubject, core::attrs::kSubjectId,
              core::AttributeValue(subject));
  }
  if (!action.empty()) {
    t.require(core::Category::kAction, core::attrs::kActionId,
              core::AttributeValue(action));
  }
  if (!t.empty()) r.target = std::move(t);
  p.rules.push_back(std::move(r));
  return p;
}

// ---------------------------------------------------------------------
// Atom extraction
// ---------------------------------------------------------------------

TEST(AtomExtractionTest, PolicyTargetIntersectedIntoRules) {
  const core::Policy p = make_policy("p", core::Effect::kPermit, "alice", "doc", "read");
  const auto atoms = extract_atoms(p);
  ASSERT_EQ(atoms.size(), 1u);
  const Atom& a = atoms[0];
  EXPECT_FALSE(a.approximate);
  const AttributeKey res{core::Category::kResource, core::attrs::kResourceId};
  const AttributeKey subj{core::Category::kSubject, core::attrs::kSubjectId};
  ASSERT_TRUE(a.constraints.count(res));
  EXPECT_TRUE(a.constraints.at(res).count("doc"));
  EXPECT_TRUE(a.constraints.at(subj).count("alice"));
}

TEST(AtomExtractionTest, ConditionMakesAtomApproximate) {
  core::Policy p = make_policy("p", core::Effect::kPermit, "", "doc", "");
  p.rules[0].condition = core::lit(true);
  const auto atoms = extract_atoms(p);
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_TRUE(atoms[0].approximate);
}

TEST(AtomExtractionTest, NonEqualityMatchMakesAtomApproximate) {
  core::Policy p;
  p.policy_id = "p";
  core::AnyOf any;
  core::AllOf all;
  core::Match m;
  m.function_id = "string-starts-with";
  m.literal = core::AttributeValue("adm");
  m.category = core::Category::kSubject;
  m.attribute_id = core::attrs::kSubjectId;
  all.matches.push_back(std::move(m));
  any.all_ofs.push_back(std::move(all));
  p.target_spec.any_ofs.push_back(std::move(any));
  core::Rule r;
  r.id = "r";
  r.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(r));

  const auto atoms = extract_atoms(p);
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_TRUE(atoms[0].approximate);
}

TEST(AtomExtractionTest, ContradictoryTargetDropsAtom) {
  // Policy target requires resource=a AND rule target requires resource=b:
  // the rule can never apply, so no atom is produced.
  core::Policy p = make_policy("p", core::Effect::kPermit, "", "a", "");
  core::Target rule_target;
  rule_target.require(core::Category::kResource, core::attrs::kResourceId,
                      core::AttributeValue("b"));
  p.rules[0].target = std::move(rule_target);
  EXPECT_TRUE(extract_atoms(p).empty());
}

// ---------------------------------------------------------------------
// Modality conflicts
// ---------------------------------------------------------------------

TEST(ModalityConflictTest, OppositeEffectsSameTupleConflict) {
  const core::Policy permit = make_policy("permit", core::Effect::kPermit,
                                          "alice", "doc", "read");
  const core::Policy deny = make_policy("deny", core::Effect::kDeny,
                                        "alice", "doc", "read");
  const AnalysisResult result = analyse({&permit, &deny});
  ASSERT_EQ(result.conflicts.size(), 1u);
  const Conflict& c = result.conflicts[0];
  EXPECT_EQ(result.atoms[c.permit_index].policy_id, "permit");
  EXPECT_EQ(result.atoms[c.deny_index].policy_id, "deny");
  EXPECT_FALSE(c.approximate);
  // Witness includes a concrete value for every constrained attribute.
  const AttributeKey subj{core::Category::kSubject, core::attrs::kSubjectId};
  EXPECT_EQ(c.witness.at(subj), "alice");
}

TEST(ModalityConflictTest, DisjointSubjectsDoNotConflict) {
  const core::Policy permit = make_policy("permit", core::Effect::kPermit,
                                          "alice", "doc", "read");
  const core::Policy deny = make_policy("deny", core::Effect::kDeny,
                                        "bob", "doc", "read");
  EXPECT_TRUE(analyse({&permit, &deny}).conflicts.empty());
}

TEST(ModalityConflictTest, DisjointResourcesDoNotConflict) {
  const core::Policy permit = make_policy("permit", core::Effect::kPermit,
                                          "alice", "doc-1", "read");
  const core::Policy deny = make_policy("deny", core::Effect::kDeny,
                                        "alice", "doc-2", "read");
  EXPECT_TRUE(analyse({&permit, &deny}).conflicts.empty());
}

TEST(ModalityConflictTest, UnconstrainedAttributeOverlapsEverything) {
  // Deny for everyone on doc vs permit for alice on doc: conflict.
  const core::Policy permit = make_policy("permit", core::Effect::kPermit,
                                          "alice", "doc", "");
  const core::Policy deny = make_policy("deny", core::Effect::kDeny, "", "doc", "");
  const AnalysisResult result = analyse({&permit, &deny});
  EXPECT_EQ(result.conflicts.size(), 1u);
}

TEST(ModalityConflictTest, SameEffectNeverConflicts) {
  const core::Policy a = make_policy("a", core::Effect::kPermit, "alice", "doc", "read");
  const core::Policy b = make_policy("b", core::Effect::kPermit, "alice", "doc", "read");
  EXPECT_TRUE(analyse({&a, &b}).conflicts.empty());
}

TEST(ModalityConflictTest, ApproximateAtomsFlaggedInConflicts) {
  core::Policy permit = make_policy("permit", core::Effect::kPermit, "", "doc", "");
  permit.rules[0].condition = core::lit(true);
  const core::Policy deny = make_policy("deny", core::Effect::kDeny, "", "doc", "");
  const AnalysisResult result = analyse({&permit, &deny});
  ASSERT_EQ(result.conflicts.size(), 1u);
  EXPECT_TRUE(result.conflicts[0].approximate);
}

// ---------------------------------------------------------------------
// Property test: the analysis agrees with a brute-force PDP oracle on
// the equality fragment.
// ---------------------------------------------------------------------

class ConflictOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConflictOracleSweep, AnalysisMatchesBruteForceOracle) {
  // Generate a random set of single-rule policies over small domains and
  // cross-check: a (permit, deny) atom pair conflicts iff some concrete
  // (subject, resource, action) triple makes both rules applicable.
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const std::vector<std::string> subjects{"s1", "s2", ""};
  const std::vector<std::string> resources{"r1", "r2", ""};
  const std::vector<std::string> actions{"read", "write", ""};

  std::vector<core::Policy> policies;
  for (int i = 0; i < 6; ++i) {
    policies.push_back(make_policy(
        "p" + std::to_string(i),
        rng() % 2 == 0 ? core::Effect::kPermit : core::Effect::kDeny,
        subjects[rng() % subjects.size()], resources[rng() % resources.size()],
        actions[rng() % actions.size()]));
  }
  std::vector<const core::Policy*> pointers;
  for (const auto& p : policies) pointers.push_back(&p);
  const AnalysisResult result = analyse(pointers);

  // Oracle: evaluate every policy against every concrete triple.
  const std::vector<std::string> concrete_subjects{"s1", "s2", "other"};
  const std::vector<std::string> concrete_resources{"r1", "r2", "other"};
  const std::vector<std::string> concrete_actions{"read", "write", "other"};
  std::set<std::pair<std::string, std::string>> oracle_conflicts;
  for (const auto& s : concrete_subjects) {
    for (const auto& r : concrete_resources) {
      for (const auto& a : concrete_actions) {
        const auto req = core::RequestContext::make(s, r, a);
        std::vector<const core::Policy*> permits, denies;
        for (const auto& p : policies) {
          core::EvaluationContext ctx(req, core::FunctionRegistry::standard());
          const core::Decision d = p.evaluate(ctx);
          if (d.is_permit()) permits.push_back(&p);
          if (d.is_deny()) denies.push_back(&p);
        }
        for (const auto* p : permits) {
          for (const auto* d : denies) {
            oracle_conflicts.insert({p->policy_id, d->policy_id});
          }
        }
      }
    }
  }

  std::set<std::pair<std::string, std::string>> analysis_conflicts;
  for (const Conflict& c : result.conflicts) {
    analysis_conflicts.insert({result.atoms[c.permit_index].policy_id,
                               result.atoms[c.deny_index].policy_id});
  }
  EXPECT_EQ(analysis_conflicts, oracle_conflicts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictOracleSweep, ::testing::Range(0, 30));

// ---------------------------------------------------------------------
// SoD meta-policies
// ---------------------------------------------------------------------

TEST(SodTest, DetectsSubjectGrantedBothHalves) {
  const core::Policy submit = make_policy("submit", core::Effect::kPermit,
                                          "alice", "purchase-order", "submit");
  const core::Policy approve = make_policy("approve", core::Effect::kPermit,
                                           "alice", "purchase-order", "approve");
  const AnalysisResult result = analyse({&submit, &approve});

  const std::vector<SodMetaPolicy> metas{
      {"submit-vs-approve", "purchase-order", "submit", "purchase-order", "approve"}};
  const auto violations = check_sod(result.atoms, metas);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_TRUE(violations[0].overlapping_subjects.count("alice"));
}

TEST(SodTest, DifferentSubjectsAreFine) {
  const core::Policy submit = make_policy("submit", core::Effect::kPermit,
                                          "alice", "purchase-order", "submit");
  const core::Policy approve = make_policy("approve", core::Effect::kPermit,
                                           "bob", "purchase-order", "approve");
  const AnalysisResult result = analyse({&submit, &approve});
  const std::vector<SodMetaPolicy> metas{
      {"sod", "purchase-order", "submit", "purchase-order", "approve"}};
  EXPECT_TRUE(check_sod(result.atoms, metas).empty());
}

TEST(SodTest, UnconstrainedSubjectViolates) {
  // A permit-to-everyone on both halves violates for any subject.
  const core::Policy submit = make_policy("submit", core::Effect::kPermit, "",
                                          "purchase-order", "submit");
  const core::Policy approve = make_policy("approve", core::Effect::kPermit, "",
                                           "purchase-order", "approve");
  const AnalysisResult result = analyse({&submit, &approve});
  const std::vector<SodMetaPolicy> metas{
      {"sod", "purchase-order", "submit", "purchase-order", "approve"}};
  const auto violations = check_sod(result.atoms, metas);
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(violations[0].overlapping_subjects.empty());  // "any subject"
}

TEST(SodTest, DenyAtomsDoNotTriggerSod) {
  const core::Policy submit = make_policy("submit", core::Effect::kDeny,
                                          "alice", "purchase-order", "submit");
  const core::Policy approve = make_policy("approve", core::Effect::kPermit,
                                           "alice", "purchase-order", "approve");
  const AnalysisResult result = analyse({&submit, &approve});
  const std::vector<SodMetaPolicy> metas{
      {"sod", "purchase-order", "submit", "purchase-order", "approve"}};
  EXPECT_TRUE(check_sod(result.atoms, metas).empty());
}

}  // namespace
}  // namespace mdac::conflict
