#include <gtest/gtest.h>

#include "core/functions.hpp"
#include "core/serialization.hpp"

namespace mdac::core {
namespace {

// ---------------------------------------------------------------------
// Expression round-trips
// ---------------------------------------------------------------------

ExprResult eval_expr(const ExprPtr& e, const RequestContext& req = {}) {
  EvaluationContext ctx(req, FunctionRegistry::standard());
  return e->evaluate(ctx);
}

TEST(ExprSerializationTest, LiteralRoundTrip) {
  const auto original = lit(AttributeValue(std::int64_t{42}));
  const auto back = expr_from_xml(expr_to_xml(*original));
  EXPECT_EQ(eval_expr(back).bag, eval_expr(original).bag);
}

TEST(ExprSerializationTest, BagLiteralRoundTrip) {
  const auto original =
      lit_bag(Bag::of({AttributeValue("a"), AttributeValue("b")}));
  const auto back = expr_from_xml(expr_to_xml(*original));
  EXPECT_EQ(eval_expr(back).bag, eval_expr(original).bag);
}

TEST(ExprSerializationTest, NestedApplyRoundTrip) {
  RequestContext req;
  req.add(Category::kSubject, "role", AttributeValue("doctor"));
  const auto original = make_apply(
      "and",
      make_apply("any-of", function_ref("string-equal"), lit("doctor"),
            designator(Category::kSubject, "role", DataType::kString)),
      make_apply("not", lit(false)));
  const auto back = expr_from_xml(expr_to_xml(*original));
  EXPECT_EQ(eval_expr(back, req).bag, eval_expr(original, req).bag);
}

TEST(ExprSerializationTest, DesignatorAttributesPreserved) {
  const auto original =
      designator(Category::kEnvironment, "tod", DataType::kTime, true);
  const xml::Element e = expr_to_xml(*original);
  EXPECT_EQ(e.attr("Category"), "environment");
  EXPECT_EQ(e.attr("DataType"), "time");
  EXPECT_EQ(e.attr("MustBePresent"), "true");
  const auto back = expr_from_xml(e);
  const auto& d = static_cast<const DesignatorExpr&>(*back);
  EXPECT_TRUE(d.must_be_present());
  EXPECT_EQ(d.data_type(), DataType::kTime);
}

TEST(ExprSerializationTest, UnknownElementThrows) {
  EXPECT_THROW(expr_from_xml(xml::parse("<Wat/>")), SerializationError);
}

// ---------------------------------------------------------------------
// Policy round-trips
// ---------------------------------------------------------------------

Policy sample_policy() {
  Policy p;
  p.policy_id = "sample";
  p.version = "3";
  p.description = "demo policy";
  p.issuer = "cn=admin,o=domain-a";
  p.rule_combining = "first-applicable";
  p.target_spec.require(Category::kResource, attrs::kResourceId,
                        AttributeValue("record"));
  p.target_spec.require_any(Category::kAction, attrs::kActionId,
                            {AttributeValue("read"), AttributeValue("list")});

  Rule r1;
  r1.id = "permit-doctors";
  r1.description = "doctors allowed";
  r1.effect = Effect::kPermit;
  r1.condition = make_apply("any-of", function_ref("string-equal"), lit("doctor"),
                       designator(Category::kSubject, attrs::kRole, DataType::kString));
  ObligationExpr ob;
  ob.id = "audit";
  ob.fulfill_on = Effect::kPermit;
  AttributeAssignmentExpr assign;
  assign.attribute_id = "msg";
  assign.expr = lit("granted");
  ob.assignments.push_back(std::move(assign));
  r1.obligations.push_back(std::move(ob));
  p.rules.push_back(std::move(r1));

  Rule r2;
  r2.id = "deny-rest";
  r2.effect = Effect::kDeny;
  Target rt;
  rt.require(Category::kSubject, "banned", AttributeValue("true"));
  r2.target = rt;
  p.rules.push_back(std::move(r2));

  ObligationExpr advice;
  advice.id = "notify";
  advice.fulfill_on = Effect::kDeny;
  advice.advice = true;
  p.obligations.push_back(std::move(advice));
  return p;
}

TEST(PolicySerializationTest, StructuralFieldsSurvive) {
  const Policy original = sample_policy();
  const Policy back = policy_from_xml(policy_to_xml(original));
  EXPECT_EQ(back.policy_id, original.policy_id);
  EXPECT_EQ(back.version, original.version);
  EXPECT_EQ(back.description, original.description);
  EXPECT_EQ(back.issuer, original.issuer);
  EXPECT_EQ(back.rule_combining, original.rule_combining);
  ASSERT_EQ(back.rules.size(), 2u);
  EXPECT_EQ(back.rules[0].id, "permit-doctors");
  EXPECT_EQ(back.rules[0].obligations.size(), 1u);
  EXPECT_EQ(back.rules[1].effect, Effect::kDeny);
  ASSERT_TRUE(back.rules[1].target.has_value());
  EXPECT_EQ(back.obligations.size(), 1u);
  EXPECT_TRUE(back.obligations[0].advice);
}

TEST(PolicySerializationTest, BehaviourPreservedThroughRoundTrip) {
  const Policy original = sample_policy();
  const Policy back = policy_from_xml(policy_to_xml(original));

  const auto decide = [](const Policy& p, const RequestContext& req) {
    EvaluationContext ctx(req, FunctionRegistry::standard());
    return p.evaluate(ctx);
  };

  auto doctor_read = RequestContext::make("alice", "record", "read");
  doctor_read.add(Category::kSubject, attrs::kRole, AttributeValue("doctor"));
  auto janitor_read = RequestContext::make("bob", "record", "read");
  auto unrelated = RequestContext::make("alice", "other", "read");

  for (const auto* req : {&doctor_read, &janitor_read, &unrelated}) {
    const Decision a = decide(original, *req);
    const Decision b = decide(back, *req);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.obligations.size(), b.obligations.size());
  }
}

TEST(PolicySerializationTest, DoubleRoundTripIsStable) {
  const Policy original = sample_policy();
  const std::string once = xml::to_string(policy_to_xml(original));
  const Policy back = policy_from_xml(xml::parse(once));
  const std::string twice = xml::to_string(policy_to_xml(back));
  EXPECT_EQ(once, twice);
}

TEST(PolicySetSerializationTest, NestedSetsAndReferences) {
  PolicySet root;
  root.policy_set_id = "root";
  root.policy_combining = "first-applicable";
  root.add(sample_policy());
  root.add_reference("external-policy");
  PolicySet inner;
  inner.policy_set_id = "inner";
  inner.add(sample_policy());
  root.add(std::move(inner));

  const PolicySet back = policy_set_from_xml(policy_set_to_xml(root));
  EXPECT_EQ(back.policy_set_id, "root");
  ASSERT_EQ(back.children().size(), 3u);
  EXPECT_EQ(back.children()[0]->id(), "sample");
  EXPECT_EQ(back.children()[1]->id(), "external-policy");
  EXPECT_EQ(back.children()[2]->id(), "inner");
}

TEST(PolicySetSerializationTest, NodeDispatchWorks) {
  const auto ref = std::make_unique<PolicyReference>("elsewhere");
  const auto back = node_from_string(node_to_string(*ref));
  EXPECT_EQ(back->id(), "elsewhere");
}

TEST(PolicySerializationTest, MalformedDocumentsThrow) {
  EXPECT_THROW(policy_from_xml(xml::parse("<Policy/>")), SerializationError);
  EXPECT_THROW(policy_from_xml(xml::parse("<NotAPolicy PolicyId=\"x\"/>")),
               SerializationError);
  EXPECT_THROW(node_from_string("<PolicyReference/>"), SerializationError);
  EXPECT_THROW(
      policy_from_xml(xml::parse("<Policy PolicyId=\"p\"><Rule RuleId=\"r\" "
                                 "Effect=\"sideways\"/></Policy>")),
      SerializationError);
}

// ---------------------------------------------------------------------
// Request / decision round-trips
// ---------------------------------------------------------------------

TEST(RequestSerializationTest, RoundTripPreservesAllAttributes) {
  RequestContext req = RequestBuilder()
                           .subject("alice")
                           .subject_attr(attrs::kRole, AttributeValue("doctor"))
                           .subject_attr(attrs::kRole, AttributeValue("surgeon"))
                           .resource("record-7")
                           .action("read")
                           .environment_attr("tod", AttributeValue(TimeValue{9000}))
                           .build();
  const RequestContext back = request_from_string(request_to_string(req));
  EXPECT_EQ(back, req);
}

TEST(RequestSerializationTest, TypedValuesKeepTypes) {
  RequestContext req;
  req.add(Category::kEnvironment, "count", AttributeValue(std::int64_t{5}));
  req.add(Category::kEnvironment, "ratio", AttributeValue(0.5));
  req.add(Category::kEnvironment, "flag", AttributeValue(true));
  const RequestContext back = request_from_string(request_to_string(req));
  EXPECT_TRUE(back.get(Category::kEnvironment, "count")->at(0).is_integer());
  EXPECT_TRUE(back.get(Category::kEnvironment, "ratio")->at(0).is_double());
  EXPECT_TRUE(back.get(Category::kEnvironment, "flag")->at(0).is_boolean());
}

TEST(DecisionSerializationTest, PermitWithObligations) {
  Decision d = Decision::permit();
  d.obligations.push_back(
      ObligationInstance{"audit", {{"msg", AttributeValue("hello")}}});
  d.advice.push_back(ObligationInstance{"hint", {}});
  const Decision back = decision_from_string(decision_to_string(d));
  EXPECT_EQ(back, d);
}

TEST(DecisionSerializationTest, IndeterminateWithStatus) {
  const Decision d = Decision::indeterminate(
      IndeterminateExtent::kDP, Status::missing_attribute("subject:role"));
  const Decision back = decision_from_string(decision_to_string(d));
  EXPECT_EQ(back, d);
}

TEST(DecisionSerializationTest, AllDecisionTypesRoundTrip) {
  for (const Decision& d :
       {Decision::permit(), Decision::deny(), Decision::not_applicable(),
        Decision::indeterminate(IndeterminateExtent::kP,
                                Status::processing_error("x"))}) {
    EXPECT_EQ(decision_from_string(decision_to_string(d)), d);
  }
}

TEST(DecisionSerializationTest, MalformedResponseThrows) {
  EXPECT_THROW(decision_from_string("<Response/>"), SerializationError);
  EXPECT_THROW(decision_from_string("<Response><Result Decision=\"maybe\"/></Response>"),
               SerializationError);
}

// Wire-size sanity: the verbosity the paper worries about is real.
TEST(WireSizeTest, PolicyXmlIsVerboseButBounded) {
  const Policy p = sample_policy();
  const std::string wire = node_to_string(p);
  EXPECT_GT(wire.size(), 500u);    // XML encoding overhead exists...
  EXPECT_LT(wire.size(), 20000u);  // ...but is not absurd for one policy
}

}  // namespace
}  // namespace mdac::core
