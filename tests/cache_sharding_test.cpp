#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "cache/decision_cache.hpp"
#include "cache/sharded_cache.hpp"

namespace mdac::cache {
namespace {

using core::Decision;

// ---------------------------------------------------------------------
// ShardedTtlLruCache: structure and stats
// ---------------------------------------------------------------------

TEST(ShardedCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  common::ManualClock clock;
  EXPECT_EQ((ShardedTtlLruCache<std::string, int>(clock, 100, 64, 0)).shard_count(), 1u);
  EXPECT_EQ((ShardedTtlLruCache<std::string, int>(clock, 100, 64, 1)).shard_count(), 1u);
  EXPECT_EQ((ShardedTtlLruCache<std::string, int>(clock, 100, 64, 3)).shard_count(), 4u);
  EXPECT_EQ((ShardedTtlLruCache<std::string, int>(clock, 100, 64, 8)).shard_count(), 8u);
}

TEST(ShardedCacheTest, HitMissAndSizeAcrossShards) {
  common::ManualClock clock;
  ShardedTtlLruCache<std::string, int> cache(clock, 1000, 1024, 8);
  for (int i = 0; i < 100; ++i) {
    cache.insert("key-" + std::to_string(i), i);
  }
  EXPECT_EQ(cache.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    const auto hit = cache.lookup("key-" + std::to_string(i));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, i);
  }
  EXPECT_FALSE(cache.lookup("absent").has_value());

  // Stats aggregate exactly across shards.
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 100u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ShardedCacheTest, TtlExpiryAppliesPerEntry) {
  common::ManualClock clock;
  ShardedTtlLruCache<std::string, int> cache(clock, 100, 1024, 4);
  cache.insert("a", 1);
  clock.advance(99);
  EXPECT_TRUE(cache.lookup("a").has_value());
  clock.advance(1);
  EXPECT_FALSE(cache.lookup("a").has_value());
  EXPECT_EQ(cache.stats().expirations, 1u);
}

TEST(ShardedCacheTest, CapacityIsSplitAcrossShardsAndEvicts) {
  common::ManualClock clock;
  ShardedTtlLruCache<std::string, int> cache(clock, 1'000'000, 64, 4);
  for (int i = 0; i < 1000; ++i) {
    cache.insert("key-" + std::to_string(i), i);
  }
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ShardedCacheTest, InvalidateTargetsOneKey) {
  common::ManualClock clock;
  ShardedTtlLruCache<std::string, int> cache(clock, 1000, 1024, 8);
  cache.insert("keep", 1);
  cache.insert("drop", 2);
  EXPECT_TRUE(cache.invalidate("drop"));
  EXPECT_FALSE(cache.invalidate("drop"));  // already gone
  EXPECT_TRUE(cache.lookup("keep").has_value());
  EXPECT_FALSE(cache.lookup("drop").has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ShardedCacheTest, InvalidateAllSweepsEveryShard) {
  common::ManualClock clock;
  ShardedTtlLruCache<std::string, int> cache(clock, 1000, 1024, 8);
  for (int i = 0; i < 64; ++i) cache.insert("key-" + std::to_string(i), i);
  cache.invalidate_all();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 64u);
}

TEST(ShardedCacheTest, StatsAggregateInUint64WithoutNarrowing) {
  // The aggregation contract: per-shard counters are uint64 and the
  // cross-shard sum stays in uint64, so totals past 2^32 don't wrap.
  static_assert(std::is_same_v<decltype(CacheStats::hits), std::uint64_t>);
  static_assert(std::is_same_v<decltype(CacheStats::misses), std::uint64_t>);
  static_assert(std::is_same_v<decltype(CacheStats::evictions), std::uint64_t>);
  static_assert(std::is_same_v<decltype(CacheStats::expirations), std::uint64_t>);
  static_assert(std::is_same_v<decltype(CacheStats::invalidations), std::uint64_t>);

  CacheStats total;
  CacheStats shard;
  shard.hits = (std::uint64_t{1} << 32) + 5;  // would wrap a 32-bit counter
  shard.misses = 3;
  total += shard;
  total += shard;
  EXPECT_EQ(total.hits, (std::uint64_t{1} << 33) + 10);
  EXPECT_EQ(total.misses, 6u);
  EXPECT_DOUBLE_EQ(total.hit_ratio(),
                   static_cast<double>(total.hits) /
                       static_cast<double>(total.hits + total.misses));
}

TEST(ShardedCacheTest, EvictIfSweepsMatchingEntriesAcrossShards) {
  common::ManualClock clock;
  ShardedTtlLruCache<std::string, int> cache(clock, 1000, 1024, 8);
  for (int i = 0; i < 64; ++i) cache.insert("key-" + std::to_string(i), i);
  const std::size_t removed = cache.evict_if(
      [](const std::string& key) { return std::stoi(key.substr(4)) % 2 == 0; });
  EXPECT_EQ(removed, 32u);
  EXPECT_EQ(cache.size(), 32u);
  EXPECT_FALSE(cache.lookup("key-0").has_value());
  EXPECT_TRUE(cache.lookup("key-1").has_value());
  EXPECT_EQ(cache.stats().invalidations, 32u);
}

// ---------------------------------------------------------------------
// Concurrency: correctness under parallel hit/miss/invalidate traffic.
// ---------------------------------------------------------------------

TEST(ShardedCacheTest, ConcurrentLookupsAndInsertsAreConsistent) {
  common::ManualClock clock;
  ShardedTtlLruCache<std::string, int> cache(clock, 1'000'000, 16384, 8);
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 200;
  constexpr int kRounds = 50;

  std::vector<std::thread> threads;
  std::atomic<int> wrong_values{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread owns a disjoint key range: its lookups must only
      // ever see its own values.
      for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < kKeysPerThread; ++k) {
          const int id = t * kKeysPerThread + k;
          const std::string key = "key-" + std::to_string(id);
          if (round == 0) {
            cache.insert(key, id);
          } else if (const auto hit = cache.lookup(key)) {
            if (*hit != id) wrong_values.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(wrong_values.load(), 0);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kThreads * kKeysPerThread));
  const CacheStats stats = cache.stats();
  // Every operation is accounted for exactly once across shards.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::size_t>(kThreads * kKeysPerThread * (kRounds - 1)));
}

TEST(ShardedCacheTest, ConcurrentInvalidateAllDoesNotCorrupt) {
  common::ManualClock clock;
  ShardedTtlLruCache<std::string, int> cache(clock, 1'000'000, 4096, 8);
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "key-" + std::to_string((t * kOps + i) % 512);
        if (i % 100 == 99) {
          cache.invalidate_all();
        } else if (i % 2 == 0) {
          cache.insert(key, i);
        } else {
          (void)cache.lookup(key);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  cache.invalidate_all();
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------
// DecisionCache on top of the sharded store
// ---------------------------------------------------------------------

TEST(ShardedDecisionCacheTest, PublicApiRoundTrip) {
  common::ManualClock clock;
  DecisionCache cache(clock, 1000);
  EXPECT_EQ(cache.shard_count(), 8u);

  const auto req = core::RequestContext::make("alice", "doc", "read");
  EXPECT_FALSE(cache.lookup(req).has_value());
  cache.insert(req, Decision::permit());
  const auto hit = cache.lookup(req);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->is_permit());

  EXPECT_TRUE(cache.invalidate(req));
  EXPECT_FALSE(cache.lookup(req).has_value());
}

TEST(ShardedDecisionCacheTest, ConcurrentMixedTrafficServesCorrectDecisions) {
  common::ManualClock clock;
  DecisionCache cache(clock, 1'000'000, 16384, 8);
  constexpr int kThreads = 8;
  constexpr int kUsers = 64;

  // Decision is derivable from the request (even user => permit), so
  // every thread can verify any cached answer.
  auto decision_for = [](int user) {
    return user % 2 == 0 ? Decision::permit() : Decision::deny();
  };

  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        const int user = (t + i) % kUsers;
        const auto req = core::RequestContext::make(
            "user-" + std::to_string(user), "doc", "read");
        if (const auto hit = cache.lookup(req)) {
          if (hit->is_permit() != (user % 2 == 0)) wrong.fetch_add(1);
        } else {
          cache.insert(req, decision_for(user));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_LE(cache.size(), static_cast<std::size_t>(kUsers));
  const CacheStats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GE(stats.misses, static_cast<std::size_t>(kUsers));
}

}  // namespace
}  // namespace mdac::cache
