#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "cache/decision_cache.hpp"
#include "cache/request_key.hpp"

namespace mdac::cache {
namespace {

using core::AttributeValue;
using core::Category;

// ---------------------------------------------------------------------
// Canonicalisation: semantically equal requests fingerprint equal.
// ---------------------------------------------------------------------

TEST(RequestKeyTest, EqualRequestsEqualKeys) {
  const auto a = core::RequestContext::make("alice", "doc", "read");
  const auto b = core::RequestContext::make("alice", "doc", "read");
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(RequestKeyTest, AttributeInsertionOrderDoesNotMatter) {
  core::RequestContext a;
  a.add(Category::kSubject, "subject-id", AttributeValue("alice"));
  a.add(Category::kSubject, "role", AttributeValue("doctor"));
  a.add(Category::kResource, "resource-id", AttributeValue("record"));
  a.add(Category::kAction, "action-id", AttributeValue("read"));

  core::RequestContext b;
  b.add(Category::kAction, "action-id", AttributeValue("read"));
  b.add(Category::kResource, "resource-id", AttributeValue("record"));
  b.add(Category::kSubject, "role", AttributeValue("doctor"));
  b.add(Category::kSubject, "subject-id", AttributeValue("alice"));

  EXPECT_EQ(a, b);  // storage itself canonicalises
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(RequestKeyTest, BagValueOrderDoesNotMatter) {
  core::RequestContext a;
  a.add(Category::kSubject, "role", AttributeValue("x"));
  a.add(Category::kSubject, "role", AttributeValue("y"));
  core::RequestContext b;
  b.add(Category::kSubject, "role", AttributeValue("y"));
  b.add(Category::kSubject, "role", AttributeValue("x"));
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

// ---------------------------------------------------------------------
// Distinctness: different requests get different keys (by design the
// only collisions are the ~2^-128 accidental ones).
// ---------------------------------------------------------------------

TEST(RequestKeyTest, DifferentRequestsDifferentKeys) {
  const auto a = core::RequestContext::make("alice", "doc", "read");
  const auto b = core::RequestContext::make("alice", "doc", "write");
  const auto c = core::RequestContext::make("bob", "doc", "read");
  EXPECT_NE(fingerprint(a), fingerprint(b));
  EXPECT_NE(fingerprint(a), fingerprint(c));
  EXPECT_NE(fingerprint(b), fingerprint(c));
}

TEST(RequestKeyTest, DataTypeIsPartOfTheKey) {
  core::RequestContext a;
  a.add(Category::kSubject, "x", AttributeValue("1"));
  core::RequestContext b;
  b.add(Category::kSubject, "x", AttributeValue(std::int64_t{1}));
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(RequestKeyTest, CategoryIsPartOfTheKey) {
  core::RequestContext a;
  a.add(Category::kSubject, "id", AttributeValue("v"));
  core::RequestContext b;
  b.add(Category::kResource, "id", AttributeValue("v"));
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(RequestKeyTest, BagIsAMultiset) {
  core::RequestContext once;
  once.add(Category::kSubject, "role", AttributeValue("x"));
  core::RequestContext twice;
  twice.add(Category::kSubject, "role", AttributeValue("x"));
  twice.add(Category::kSubject, "role", AttributeValue("x"));
  EXPECT_NE(fingerprint(once), fingerprint(twice));
}

TEST(RequestKeyTest, EmptyRequestHasStableKey) {
  EXPECT_EQ(fingerprint(core::RequestContext{}), fingerprint(core::RequestContext{}));
  const auto nonempty = core::RequestContext::make("a", "b", "c");
  EXPECT_NE(fingerprint(core::RequestContext{}), fingerprint(nonempty));
}

/// The fingerprint must induce the same equivalence classes as the
/// canonical string key over a populated request space.
TEST(RequestKeyTest, AgreesWithCanonicalStringKey) {
  std::set<std::string> strings;
  std::set<std::pair<std::uint64_t, std::uint64_t>> prints;
  for (int user = 0; user < 10; ++user) {
    for (int res = 0; res < 10; ++res) {
      for (const char* action : {"read", "write"}) {
        auto req = core::RequestContext::make("user-" + std::to_string(user),
                                              "res-" + std::to_string(res), action);
        req.add(Category::kSubject, "role",
                AttributeValue("role-" + std::to_string(user % 3)));
        strings.insert(canonical_request_key(req));
        const RequestKey k = fingerprint(req);
        prints.insert({k.lo, k.hi});
      }
    }
  }
  EXPECT_EQ(strings.size(), prints.size());
  EXPECT_EQ(prints.size(), 200u);
}

// ---------------------------------------------------------------------
// The cache consumes keys directly (fingerprint-once shape).
// ---------------------------------------------------------------------

TEST(RequestKeyTest, KeyLevelCacheApiMatchesRequestLevel) {
  common::ManualClock clock;
  DecisionCache cache(clock, 1000);
  const auto req = core::RequestContext::make("alice", "doc", "read");
  const RequestKey key = fingerprint(req);

  cache.insert(key, core::Decision::deny());
  const auto by_request = cache.lookup(req);
  const auto by_key = cache.lookup(key);
  ASSERT_TRUE(by_request.has_value());
  ASSERT_TRUE(by_key.has_value());
  EXPECT_TRUE(by_request->is_deny());
  EXPECT_TRUE(by_key->is_deny());
}

}  // namespace
}  // namespace mdac::cache
