// Dynamic soundness oracle for the static analyser (the pinning test the
// tentpole demands): over randomized federation and set-tree workloads,
//   1. removal invariance — for every rule/policy the analyser flags
//      unreachable, deleting it from the tree must not change any
//      decision over a random request sweep (stronger than "is never the
//      deciding rule": it also covers obligations and Indeterminates);
//   2. conflict completeness — every injected cross-root permit/deny
//      mirror pair must be reported (approximate findings are allowed,
//      silently missed conflicts are not).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "analysis/analysis.hpp"
#include "workload.hpp"
#include "common/rng.hpp"
#include "core/functions.hpp"

namespace mdac::analysis {
namespace {

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> segments;
  std::stringstream stream(path);
  std::string segment;
  while (std::getline(stream, segment, '/')) segments.push_back(segment);
  return segments;
}

/// Clones `node` with the rule/child named by the last path segment
/// removed. `next` indexes the segment naming the element beneath `node`.
core::PolicyNodePtr clone_without(const core::PolicyTreeNode& node,
                                  const std::vector<std::string>& segments,
                                  std::size_t next) {
  if (const auto* policy = dynamic_cast<const core::Policy*>(&node)) {
    core::Policy copy = policy->clone();
    EXPECT_EQ(next, segments.size() - 1) << "rule segment must be last";
    std::erase_if(copy.rules, [&](const core::Rule& r) {
      return r.id == segments[next];
    });
    return std::make_unique<core::Policy>(std::move(copy));
  }
  const auto* set = dynamic_cast<const core::PolicySet*>(&node);
  if (set == nullptr) return node.clone_node();
  core::PolicySet copy;
  copy.policy_set_id = set->policy_set_id;
  copy.version = set->version;
  copy.policy_combining = set->policy_combining;
  copy.target_spec = set->target_spec;
  for (const core::ObligationExpr& ob : set->obligations) {
    copy.obligations.push_back(ob.clone());
  }
  for (const core::PolicyNodePtr& child : set->children()) {
    if (child->id() == segments[next]) {
      if (next == segments.size() - 1) continue;  // drop the child itself
      copy.add_node(clone_without(*child, segments, next + 1));
    } else {
      copy.add_node(child->clone_node());
    }
  }
  return std::make_unique<core::PolicySet>(std::move(copy));
}

core::Decision evaluate(const core::PolicyTreeNode& node,
                        const core::RequestContext& request) {
  core::EvaluationContext ctx(request, core::FunctionRegistry::standard());
  return node.evaluate(ctx);
}

/// Asserts removal invariance for every unreachability finding, and that
/// every (root, other_root) pair in `required_conflicts` is reported.
void run_oracle(const std::vector<core::PolicyNodePtr>& roots,
                const std::set<std::pair<std::string, std::string>>& required_conflicts,
                const std::vector<core::RequestContext>& requests) {
  std::vector<AnalysisInput> inputs;
  for (const core::PolicyNodePtr& root : roots) {
    inputs.push_back({root.get(), nullptr});
  }
  AnalyzerOptions options;
  options.max_findings_per_pass = 0;  // the oracle must see everything
  const AnalysisReport report = analyse_roots(inputs, options);

  std::size_t unreachable_checked = 0;
  for (const Finding& finding : report.findings) {
    if (!is_unreachability_code(finding.code)) continue;
    const std::vector<std::string> segments = split_path(finding.path);
    ASSERT_GE(segments.size(), 2u) << finding.code << " at " << finding.path;
    const core::PolicyTreeNode* root = nullptr;
    for (const core::PolicyNodePtr& r : roots) {
      if (r->id() == segments[0]) root = r.get();
    }
    ASSERT_NE(root, nullptr) << finding.path;
    const core::PolicyNodePtr pruned = clone_without(*root, segments, 1);
    for (const core::RequestContext& request : requests) {
      const core::Decision before = evaluate(*root, request);
      const core::Decision after = evaluate(*pruned, request);
      ASSERT_EQ(before == after, true)
          << "removing " << finding.path << " (" << finding.code
          << ") changed a decision";
    }
    ++unreachable_checked;
  }
  // The injections below guarantee the invariance loop is not vacuous.
  EXPECT_GT(unreachable_checked, 0u);

  std::set<std::pair<std::string, std::string>> reported;
  for (const Finding& finding : report.findings) {
    if (finding.code != "modality-conflict") continue;
    reported.insert({finding.root_id, finding.other_root_id});
    reported.insert({finding.other_root_id, finding.root_id});
  }
  for (const auto& pair : required_conflicts) {
    EXPECT_TRUE(reported.count(pair) > 0)
        << "missed injected conflict " << pair.first << " vs " << pair.second;
  }
}

core::Rule shadowed_rule(const std::string& id, int role, bool conditioned) {
  core::Rule r;
  r.id = id;
  r.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kSubject, core::attrs::kRole,
            core::AttributeValue("role-" + std::to_string(role)));
  r.target = std::move(t);
  if (conditioned) r.condition = core::lit(true);
  return r;
}

class AnalysisOracle : public ::testing::TestWithParam<int> {};

TEST_P(AnalysisOracle, FederationWorkloadRemovalInvariantAndComplete) {
  const int n_domains = 4, n_policies = 40, n_roles = 3;
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));

  std::vector<core::PolicyNodePtr> roots;
  std::set<std::pair<std::string, std::string>> required;
  for (int i = 0; i < n_policies; ++i) {
    core::Policy p = bench::domain_role_policy(i % n_domains, i, n_roles);
    if (rng.uniform_int(0, 4) == 0) {
      // Inject a rule after the unconditional deny-rest catch-all: under
      // first-applicable it can never decide and must be flagged.
      p.rules.push_back(shadowed_rule(p.policy_id + ":injected-shadowed",
                                      static_cast<int>(rng.uniform_int(0, n_roles - 1)),
                                      rng.uniform_int(0, 1) == 0));
    }
    if (rng.uniform_int(0, 9) == 0) {
      // Inject a mirror root denying exactly what this policy permits:
      // a cross-root exact conflict that must be reported.
      core::Policy mirror = bench::domain_role_policy(i % n_domains, i, n_roles);
      mirror.policy_id = p.policy_id + ":mirror";
      mirror.rules.clear();
      core::Rule deny;
      deny.id = mirror.policy_id + ":deny-read";
      deny.effect = core::Effect::kDeny;
      core::Target t;
      t.require(core::Category::kAction, core::attrs::kActionId,
                core::AttributeValue("read"));
      deny.target = std::move(t);
      mirror.rules.push_back(std::move(deny));
      required.insert({p.policy_id, mirror.policy_id});
      roots.push_back(std::make_unique<core::Policy>(std::move(mirror)));
    }
    roots.push_back(std::make_unique<core::Policy>(std::move(p)));
  }

  std::vector<core::RequestContext> requests;
  for (int i = 0; i < 200; ++i) {
    requests.push_back(
        bench::random_domain_request(rng, n_domains, n_policies, n_roles));
  }
  run_oracle(roots, required, requests);
}

TEST_P(AnalysisOracle, SetTreeWorkloadRemovalInvariantAndComplete) {
  const int n_domains = 3, n_services = 4, per_service = 3, n_roles = 3;
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);

  std::vector<core::PolicyNodePtr> roots;
  std::set<std::pair<std::string, std::string>> required;
  for (int d = 0; d < n_domains; ++d) {
    core::PolicySet tree =
        bench::domain_service_set(d, n_services, per_service, n_roles);
    // Inject shadowed rules into random leaf policies (after their
    // unconditional deny-rest catch-alls).
    for (const core::PolicyNodePtr& service : tree.children()) {
      auto* svc = dynamic_cast<core::PolicySet*>(service.get());
      ASSERT_NE(svc, nullptr);
      for (const core::PolicyNodePtr& leaf : svc->children()) {
        if (rng.uniform_int(0, 2) != 0) continue;
        auto* policy = dynamic_cast<core::Policy*>(leaf.get());
        ASSERT_NE(policy, nullptr);
        policy->rules.push_back(shadowed_rule(
            policy->policy_id + ":injected-shadowed",
            static_cast<int>(rng.uniform_int(0, n_roles - 1)), false));
      }
    }
    const std::string tree_id = tree.id();
    roots.push_back(std::make_unique<core::PolicySet>(std::move(tree)));

    // Mirror root: a flat deny against one leaf's exact permit space.
    core::Policy mirror;
    mirror.policy_id = "mirror:" + tree_id;
    mirror.target_spec.require(
        core::Category::kResource, core::attrs::kResourceDomain,
        core::AttributeValue("domain-" + std::to_string(d)));
    mirror.target_spec.require(core::Category::kResource, "service",
                               core::AttributeValue("svc-0"));
    mirror.target_spec.require(core::Category::kSubject, core::attrs::kRole,
                               core::AttributeValue("role-0"));
    core::Rule deny;
    deny.id = mirror.policy_id + ":deny-read";
    deny.effect = core::Effect::kDeny;
    core::Target t;
    t.require(core::Category::kAction, core::attrs::kActionId,
              core::AttributeValue("read"));
    deny.target = std::move(t);
    mirror.rules.push_back(std::move(deny));
    required.insert({tree_id, mirror.policy_id});
    roots.push_back(std::make_unique<core::Policy>(std::move(mirror)));
  }

  std::vector<core::RequestContext> requests;
  for (int i = 0; i < 200; ++i) {
    requests.push_back(
        bench::random_set_tree_request(rng, n_domains, n_services, n_roles));
  }
  run_oracle(roots, required, requests);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisOracle, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace mdac::analysis
