#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "dependability/breaker.hpp"

namespace mdac::dependability {
namespace {

class BreakerTest : public ::testing::Test {
 protected:
  BreakerTest() : breaker_(clock_, {/*failure_threshold=*/3, /*open_for=*/1000}) {}

  common::ManualClock clock_;
  CircuitBreaker breaker_;
};

TEST_F(BreakerTest, StartsClosedAndAdmitsTraffic) {
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker_.admit(), CircuitBreaker::Gate::kAllow);
  EXPECT_EQ(breaker_.consecutive_failures(), 0u);
}

TEST_F(BreakerTest, TripsOpenAtThreshold) {
  EXPECT_FALSE(breaker_.record_failure());
  EXPECT_FALSE(breaker_.record_failure());
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker_.record_failure());  // third consecutive failure trips
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker_.stats().opens, 1u);
}

TEST_F(BreakerTest, SuccessResetsTheConsecutiveCount) {
  breaker_.record_failure();
  breaker_.record_failure();
  breaker_.record_success();
  EXPECT_EQ(breaker_.consecutive_failures(), 0u);
  // Two more failures are again below the threshold.
  breaker_.record_failure();
  EXPECT_FALSE(breaker_.record_failure());
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kClosed);
}

TEST_F(BreakerTest, OpenBlocksUntilCooldownThenAdmitsOneProbe) {
  for (int i = 0; i < 3; ++i) breaker_.record_failure();
  EXPECT_EQ(breaker_.admit(), CircuitBreaker::Gate::kBlock);
  clock_.advance(999);
  EXPECT_EQ(breaker_.admit(), CircuitBreaker::Gate::kBlock);

  clock_.advance(1);  // cooldown elapsed
  EXPECT_EQ(breaker_.admit(), CircuitBreaker::Gate::kProbe);
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kHalfOpen);
  // While the probe is outstanding, everything else is blocked — a
  // recovering replica gets one try, not a thundering herd.
  EXPECT_EQ(breaker_.admit(), CircuitBreaker::Gate::kBlock);
  EXPECT_EQ(breaker_.stats().probes, 1u);
  EXPECT_GE(breaker_.stats().blocks, 3u);
}

TEST_F(BreakerTest, ProbeSuccessCloses) {
  for (int i = 0; i < 3; ++i) breaker_.record_failure();
  clock_.advance(1000);
  ASSERT_EQ(breaker_.admit(), CircuitBreaker::Gate::kProbe);
  breaker_.record_success();
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker_.admit(), CircuitBreaker::Gate::kAllow);
}

TEST_F(BreakerTest, ProbeFailureReopensForAnotherCooldown) {
  for (int i = 0; i < 3; ++i) breaker_.record_failure();
  clock_.advance(1000);
  ASSERT_EQ(breaker_.admit(), CircuitBreaker::Gate::kProbe);
  EXPECT_TRUE(breaker_.record_failure());  // probe failed: re-trip
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker_.stats().opens, 2u);
  // The new cooldown starts from the re-open, not the original trip.
  clock_.advance(999);
  EXPECT_EQ(breaker_.admit(), CircuitBreaker::Gate::kBlock);
  clock_.advance(1);
  EXPECT_EQ(breaker_.admit(), CircuitBreaker::Gate::kProbe);
}

TEST_F(BreakerTest, FailuresWhileOpenDoNotExtendTheCooldown) {
  for (int i = 0; i < 3; ++i) breaker_.record_failure();
  clock_.advance(500);
  // A straggler failure report (e.g. a timeout from a try sent before
  // the trip) must not keep pushing the probe into the future.
  breaker_.record_failure();
  clock_.advance(500);
  EXPECT_EQ(breaker_.admit(), CircuitBreaker::Gate::kProbe);
}

}  // namespace
}  // namespace mdac::dependability
