// Robustness at the trust boundaries: whatever bytes arrive from the
// network, parsers must reject them cleanly (no crashes, no hangs) and
// decision services must answer Indeterminate rather than die. Uses
// seeded random mutations of valid documents plus raw noise.
#include <gtest/gtest.h>

#include <random>

#include "core/functions.hpp"
#include "core/serialization.hpp"
#include "net/message.hpp"
#include "tokens/assertion.hpp"
#include "xml/xml.hpp"

namespace mdac {
namespace {

std::string random_bytes(std::mt19937& rng, std::size_t max_len) {
  const std::size_t n = rng() % max_len;
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(rng() % 256));
  }
  return out;
}

std::string mutate(std::string s, std::mt19937& rng, int mutations) {
  for (int i = 0; i < mutations && !s.empty(); ++i) {
    const std::size_t pos = rng() % s.size();
    switch (rng() % 3) {
      case 0:
        s[pos] = static_cast<char>(rng() % 256);
        break;
      case 1:
        s.erase(pos, 1 + rng() % 3);
        break;
      default:
        s.insert(pos, 1, static_cast<char>(rng() % 256));
        break;
    }
  }
  return s;
}

std::string valid_policy_xml() {
  core::Policy p;
  p.policy_id = "sample";
  p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                        core::AttributeValue("doc"));
  core::Rule r;
  r.id = "r";
  r.effect = core::Effect::kPermit;
  r.condition = core::make_apply(
      "any-of", core::function_ref("string-equal"), core::lit("doctor"),
      core::designator(core::Category::kSubject, core::attrs::kRole,
                       core::DataType::kString));
  p.rules.push_back(std::move(r));
  return core::node_to_string(p);
}

class RobustnessSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(RobustnessSweep, XmlParserNeverCrashesOnNoise) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::string junk = random_bytes(rng, 300);
    // Must return nullopt or a document — never crash or throw past
    // try_parse.
    (void)xml::try_parse(junk);
  }
}

TEST_P(RobustnessSweep, XmlParserSurvivesMutatedDocuments) {
  std::mt19937 rng(GetParam());
  const std::string valid = valid_policy_xml();
  for (int i = 0; i < 200; ++i) {
    const std::string mutated = mutate(valid, rng, 1 + static_cast<int>(rng() % 8));
    std::string error;
    const auto doc = xml::try_parse(mutated, &error);
    if (!doc.has_value()) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST_P(RobustnessSweep, PolicyDeserialiserRejectsGracefully) {
  std::mt19937 rng(GetParam());
  const std::string valid = valid_policy_xml();
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string mutated = mutate(valid, rng, 1 + static_cast<int>(rng() % 6));
    try {
      const auto node = core::node_from_string(mutated);
      ++parsed;  // mutation landed in a don't-care spot: still valid
      // Whatever parsed must evaluate without crashing.
      const auto request = core::RequestContext::make("s", "doc", "read");
      core::EvaluationContext ctx(request, core::FunctionRegistry::standard());
      (void)node->evaluate(ctx);
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 200);
}

TEST_P(RobustnessSweep, EnvelopeDecoderNeverCrashes) {
  std::mt19937 rng(GetParam());
  net::Message m;
  m.from = "a";
  m.to = "b";
  m.type = "authz-request";
  m.payload = valid_policy_xml();
  m.correlation = 7;
  const std::string valid = m.to_envelope();
  for (int i = 0; i < 200; ++i) {
    (void)net::Message::from_envelope(mutate(valid, rng, 1 + rng() % 10));
    (void)net::Message::from_envelope(random_bytes(rng, 200));
  }
}

TEST_P(RobustnessSweep, TokenDecoderNeverCrashes) {
  std::mt19937 rng(GetParam());
  const auto key = crypto::KeyPair::generate("robustness");
  tokens::Assertion a;
  a.assertion_id = "a1";
  a.issuer = "idp";
  a.subject = "alice";
  a.conditions.not_on_or_after = 100;
  const std::string valid = tokens::sign_assertion(std::move(a), key).to_wire();
  crypto::TrustStore trust;
  trust.add_trusted_key(key);

  for (int i = 0; i < 200; ++i) {
    const std::string mutated = mutate(valid, rng, 1 + rng() % 8);
    try {
      const auto token = tokens::SignedAssertion::from_wire(mutated);
      // If it decodes, any mutation that touched signed bytes must fail
      // validation; touching whitespace outside the canonical form is
      // the only way to stay valid.
      (void)tokens::validate(token, trust, 50, "");
    } catch (const std::exception&) {
      // rejected cleanly
    }
  }
}

TEST_P(RobustnessSweep, MutatedTokensNeverValidateWithChangedContent) {
  // Stronger property: if decoding succeeds AND validation passes, the
  // assertion content must equal the original (integrity).
  std::mt19937 rng(GetParam() + 1000);
  const auto key = crypto::KeyPair::generate("integrity");
  tokens::Assertion original;
  original.assertion_id = "a1";
  original.issuer = "idp";
  original.subject = "alice";
  original.conditions.not_on_or_after = 100;
  const tokens::SignedAssertion signed_token =
      tokens::sign_assertion(original, key);
  const std::string valid = signed_token.to_wire();
  crypto::TrustStore trust;
  trust.add_trusted_key(key);

  for (int i = 0; i < 300; ++i) {
    const std::string mutated = mutate(valid, rng, 1 + rng() % 4);
    try {
      const auto token = tokens::SignedAssertion::from_wire(mutated);
      if (tokens::validate(token, trust, 50, "") == tokens::TokenValidity::kValid) {
        EXPECT_EQ(token.assertion, signed_token.assertion)
            << "seed " << GetParam() << ": forged assertion validated";
      }
    } catch (const std::exception&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessSweep, ::testing::Range(0u, 10u));

}  // namespace
}  // namespace mdac
