// Truth-table and property tests for the combining algorithms — the
// paper's §3.1 conflict-resolution mechanism. Every algorithm is swept
// over child-decision vectors, and the XACML 3.0 extended-indeterminate
// semantics are pinned down case by case.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/combining.hpp"
#include "core/functions.hpp"

namespace mdac::core {
namespace {

/// Shorthand decision constructors used by the tables.
Decision P() { return Decision::permit(); }
Decision D() { return Decision::deny(); }
Decision NA() { return Decision::not_applicable(); }
Decision IndD() {
  return Decision::indeterminate(IndeterminateExtent::kD,
                                 Status::processing_error("child error"));
}
Decision IndP() {
  return Decision::indeterminate(IndeterminateExtent::kP,
                                 Status::processing_error("child error"));
}
Decision IndDP() {
  return Decision::indeterminate(IndeterminateExtent::kDP,
                                 Status::processing_error("child error"));
}

/// Wraps fixed decisions as Combinables (target always matches).
std::vector<Combinable> fixed(std::vector<Decision> decisions) {
  std::vector<Combinable> out;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    Decision d = decisions[i];
    out.push_back(Combinable{
        "child-" + std::to_string(i),
        [](EvaluationContext&) { return MatchResult::kMatch; },
        [d](EvaluationContext&) { return d; }});
  }
  return out;
}

Decision combine(const std::string& algorithm, std::vector<Decision> decisions) {
  const CombiningAlgorithm* alg = CombiningRegistry::standard().find(algorithm);
  EXPECT_NE(alg, nullptr) << algorithm;
  RequestContext req;
  EvaluationContext ctx(req, FunctionRegistry::standard());
  return alg->combine(fixed(std::move(decisions)), ctx);
}

// ---------------------------------------------------------------------
// Table-driven sweep across all algorithms
// ---------------------------------------------------------------------

struct CombineCase {
  std::string algorithm;
  std::vector<Decision> children;
  DecisionType expected;
  IndeterminateExtent expected_extent = IndeterminateExtent::kNone;
};

class CombiningSweep : public ::testing::TestWithParam<CombineCase> {};

TEST_P(CombiningSweep, ProducesExpectedDecision) {
  const auto& c = GetParam();
  const Decision d = combine(c.algorithm, c.children);
  EXPECT_EQ(d.type, c.expected) << d.describe();
  if (c.expected == DecisionType::kIndeterminate) {
    EXPECT_EQ(d.extent, c.expected_extent) << d.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(
    DenyOverrides, CombiningSweep,
    ::testing::Values(
        CombineCase{"deny-overrides", {P(), D(), P()}, DecisionType::kDeny},
        CombineCase{"deny-overrides", {P(), P()}, DecisionType::kPermit},
        CombineCase{"deny-overrides", {NA(), NA()}, DecisionType::kNotApplicable},
        CombineCase{"deny-overrides", {}, DecisionType::kNotApplicable},
        CombineCase{"deny-overrides", {NA(), P()}, DecisionType::kPermit},
        // Extended indeterminates:
        CombineCase{"deny-overrides", {IndD(), P()}, DecisionType::kIndeterminate,
                    IndeterminateExtent::kDP},
        CombineCase{"deny-overrides", {IndD(), NA()}, DecisionType::kIndeterminate,
                    IndeterminateExtent::kD},
        CombineCase{"deny-overrides", {IndP(), NA()}, DecisionType::kIndeterminate,
                    IndeterminateExtent::kP},
        CombineCase{"deny-overrides", {IndP(), P()}, DecisionType::kPermit},
        CombineCase{"deny-overrides", {IndDP()}, DecisionType::kIndeterminate,
                    IndeterminateExtent::kDP},
        CombineCase{"deny-overrides", {IndD(), D()}, DecisionType::kDeny},
        CombineCase{"deny-overrides", {IndD(), IndP()}, DecisionType::kIndeterminate,
                    IndeterminateExtent::kDP}));

INSTANTIATE_TEST_SUITE_P(
    PermitOverrides, CombiningSweep,
    ::testing::Values(
        CombineCase{"permit-overrides", {D(), P(), D()}, DecisionType::kPermit},
        CombineCase{"permit-overrides", {D(), D()}, DecisionType::kDeny},
        CombineCase{"permit-overrides", {NA()}, DecisionType::kNotApplicable},
        CombineCase{"permit-overrides", {IndP(), D()}, DecisionType::kIndeterminate,
                    IndeterminateExtent::kDP},
        CombineCase{"permit-overrides", {IndP(), NA()}, DecisionType::kIndeterminate,
                    IndeterminateExtent::kP},
        CombineCase{"permit-overrides", {IndD(), D()}, DecisionType::kDeny},
        CombineCase{"permit-overrides", {IndD(), NA()}, DecisionType::kIndeterminate,
                    IndeterminateExtent::kD}));

INSTANTIATE_TEST_SUITE_P(
    FirstApplicable, CombiningSweep,
    ::testing::Values(
        CombineCase{"first-applicable", {NA(), D(), P()}, DecisionType::kDeny},
        CombineCase{"first-applicable", {NA(), P(), D()}, DecisionType::kPermit},
        CombineCase{"first-applicable", {NA(), NA()}, DecisionType::kNotApplicable},
        CombineCase{"first-applicable", {IndD(), P()}, DecisionType::kIndeterminate,
                    IndeterminateExtent::kDP},
        CombineCase{"first-applicable", {P(), IndD()}, DecisionType::kPermit}));

INSTANTIATE_TEST_SUITE_P(
    UnlessVariants, CombiningSweep,
    ::testing::Values(
        CombineCase{"deny-unless-permit", {NA()}, DecisionType::kDeny},
        CombineCase{"deny-unless-permit", {}, DecisionType::kDeny},
        CombineCase{"deny-unless-permit", {IndDP()}, DecisionType::kDeny},
        CombineCase{"deny-unless-permit", {D(), P()}, DecisionType::kPermit},
        CombineCase{"permit-unless-deny", {NA()}, DecisionType::kPermit},
        CombineCase{"permit-unless-deny", {IndDP()}, DecisionType::kPermit},
        CombineCase{"permit-unless-deny", {P(), D()}, DecisionType::kDeny}));

INSTANTIATE_TEST_SUITE_P(
    OrderedVariantsMatchBase, CombiningSweep,
    ::testing::Values(
        CombineCase{"ordered-deny-overrides", {P(), D()}, DecisionType::kDeny},
        CombineCase{"ordered-permit-overrides", {D(), P()}, DecisionType::kPermit}));

// ---------------------------------------------------------------------
// only-one-applicable needs target control, not just decisions
// ---------------------------------------------------------------------

Combinable with_match(const std::string& id, MatchResult m, Decision d) {
  return Combinable{id, [m](EvaluationContext&) { return m; },
                    [d](EvaluationContext&) { return d; }};
}

Decision combine_ooa(std::vector<Combinable> children) {
  const CombiningAlgorithm* alg =
      CombiningRegistry::standard().find("only-one-applicable");
  RequestContext req;
  EvaluationContext ctx(req, FunctionRegistry::standard());
  return alg->combine(children, ctx);
}

TEST(OnlyOneApplicableTest, SingleApplicableChildWins) {
  const Decision d = combine_ooa({with_match("a", MatchResult::kNoMatch, P()),
                                  with_match("b", MatchResult::kMatch, D())});
  EXPECT_TRUE(d.is_deny());
}

TEST(OnlyOneApplicableTest, TwoApplicableChildrenIsError) {
  const Decision d = combine_ooa({with_match("a", MatchResult::kMatch, P()),
                                  with_match("b", MatchResult::kMatch, P())});
  EXPECT_TRUE(d.is_indeterminate());
  EXPECT_EQ(d.extent, IndeterminateExtent::kDP);
}

TEST(OnlyOneApplicableTest, NoApplicableChildIsNotApplicable) {
  const Decision d = combine_ooa({with_match("a", MatchResult::kNoMatch, P())});
  EXPECT_TRUE(d.is_not_applicable());
}

TEST(OnlyOneApplicableTest, TargetErrorIsIndeterminate) {
  const Decision d = combine_ooa({with_match("a", MatchResult::kIndeterminate, P())});
  EXPECT_TRUE(d.is_indeterminate());
}

// ---------------------------------------------------------------------
// Obligation flow through combiners
// ---------------------------------------------------------------------

Decision with_obligation(Decision d, const std::string& id) {
  d.obligations.push_back(ObligationInstance{id, {}});
  return d;
}

TEST(ObligationFlowTest, WinnerEffectObligationsMerged) {
  const Decision d = combine(
      "deny-overrides",
      {with_obligation(D(), "ob-1"), with_obligation(D(), "ob-2"),
       with_obligation(P(), "ob-permit")});
  ASSERT_TRUE(d.is_deny());
  ASSERT_EQ(d.obligations.size(), 2u);
  EXPECT_EQ(d.obligations[0].id, "ob-1");
  EXPECT_EQ(d.obligations[1].id, "ob-2");
}

TEST(ObligationFlowTest, LoserObligationsDroppedOnOverride) {
  const Decision d = combine("permit-overrides",
                             {with_obligation(P(), "keep"), with_obligation(D(), "drop")});
  ASSERT_TRUE(d.is_permit());
  ASSERT_EQ(d.obligations.size(), 1u);
  EXPECT_EQ(d.obligations[0].id, "keep");
}

TEST(ObligationFlowTest, UnlessVariantKeepsFallbackObligations) {
  const Decision d =
      combine("permit-unless-deny", {with_obligation(P(), "p1"), NA()});
  ASSERT_TRUE(d.is_permit());
  ASSERT_EQ(d.obligations.size(), 1u);
}

// ---------------------------------------------------------------------
// Property tests over random decision vectors
// ---------------------------------------------------------------------

class CombiningProperties : public ::testing::TestWithParam<int> {};

std::vector<Decision> random_children(int seed) {
  std::mt19937 rng(static_cast<unsigned>(seed));
  const int n = static_cast<int>(rng() % 6);
  std::vector<Decision> out;
  for (int i = 0; i < n; ++i) {
    switch (rng() % 6) {
      case 0: out.push_back(P()); break;
      case 1: out.push_back(D()); break;
      case 2: out.push_back(NA()); break;
      case 3: out.push_back(IndD()); break;
      case 4: out.push_back(IndP()); break;
      default: out.push_back(IndDP()); break;
    }
  }
  return out;
}

TEST_P(CombiningProperties, DenyOverridesNeverPermitsWhenAnyChildDenies) {
  const auto children = random_children(GetParam());
  const bool any_deny = std::any_of(children.begin(), children.end(),
                                    [](const Decision& d) { return d.is_deny(); });
  const Decision d = combine("deny-overrides", children);
  if (any_deny) {
    EXPECT_TRUE(d.is_deny());
  } else {
    EXPECT_FALSE(d.is_deny());
  }
}

TEST_P(CombiningProperties, OverridesAlgorithmsAreDuals) {
  // Swapping Permit<->Deny (and {P}<->{D}) in inputs and algorithm mirrors
  // the output.
  const auto children = random_children(GetParam());
  std::vector<Decision> mirrored;
  for (Decision d : children) {
    if (d.is_permit()) {
      d = D();
    } else if (d.is_deny()) {
      d = P();
    } else if (d.is_indeterminate()) {
      if (d.extent == IndeterminateExtent::kD) {
        d.extent = IndeterminateExtent::kP;
      } else if (d.extent == IndeterminateExtent::kP) {
        d.extent = IndeterminateExtent::kD;
      }
    }
    mirrored.push_back(d);
  }
  const Decision a = combine("deny-overrides", children);
  const Decision b = combine("permit-overrides", mirrored);
  // Mirror the result of b back.
  DecisionType mirrored_type = b.type;
  if (b.is_permit()) mirrored_type = DecisionType::kDeny;
  if (b.is_deny()) mirrored_type = DecisionType::kPermit;
  EXPECT_EQ(a.type == DecisionType::kDeny ? DecisionType::kPermit
            : a.type == DecisionType::kPermit ? DecisionType::kDeny
                                              : a.type,
            mirrored_type == DecisionType::kDeny ? DecisionType::kPermit
            : mirrored_type == DecisionType::kPermit ? DecisionType::kDeny
                                                     : mirrored_type);
  if (a.is_indeterminate() && b.is_indeterminate()) {
    IndeterminateExtent flipped = b.extent;
    if (flipped == IndeterminateExtent::kD) {
      flipped = IndeterminateExtent::kP;
    } else if (flipped == IndeterminateExtent::kP) {
      flipped = IndeterminateExtent::kD;
    }
    EXPECT_EQ(a.extent, flipped);
  }
}

TEST_P(CombiningProperties, UnlessAlgorithmsAlwaysDefinitive) {
  const auto children = random_children(GetParam());
  for (const char* alg : {"deny-unless-permit", "permit-unless-deny"}) {
    const Decision d = combine(alg, children);
    EXPECT_TRUE(d.is_permit() || d.is_deny()) << alg << ": " << d.describe();
  }
}

TEST_P(CombiningProperties, FirstApplicableIsPrefixStable) {
  // Appending children after the first applicable one never changes the
  // outcome.
  auto children = random_children(GetParam());
  const Decision base = combine("first-applicable", children);
  if (base.type == DecisionType::kPermit || base.type == DecisionType::kDeny) {
    auto extended = children;
    extended.push_back(base.is_permit() ? D() : P());
    EXPECT_EQ(combine("first-applicable", extended).type, base.type);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombiningProperties, ::testing::Range(0, 50));

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(CombiningRegistryTest, AllStandardAlgorithmsPresent) {
  const auto& reg = CombiningRegistry::standard();
  for (const char* name :
       {"deny-overrides", "permit-overrides", "ordered-deny-overrides",
        "ordered-permit-overrides", "first-applicable", "only-one-applicable",
        "deny-unless-permit", "permit-unless-deny"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.find("bogus"), nullptr);
  EXPECT_EQ(reg.names().size(), 8u);
}

}  // namespace
}  // namespace mdac::core
