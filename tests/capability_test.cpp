#include <gtest/gtest.h>

#include <memory>

#include "capability/capability.hpp"

namespace mdac::capability {
namespace {

/// Community policy (CAS-style): members of the "vo-physics" community
/// may read the shared dataset; nobody may delete it.
std::shared_ptr<core::Pdp> community_pdp() {
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "community-policy";
  p.rule_combining = "first-applicable";

  core::Rule permit;
  permit.id = "members-read-dataset";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kSubject, "community", core::AttributeValue("vo-physics"));
  t.require(core::Category::kResource, core::attrs::kResourceId,
            core::AttributeValue("dataset"));
  t.require(core::Category::kAction, core::attrs::kActionId,
            core::AttributeValue("read"));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));

  core::Rule deny;
  deny.id = "deny-rest";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  store->add(std::move(p));
  return std::make_shared<core::Pdp>(store);
}

CapabilityRequest member_request() {
  CapabilityRequest r;
  r.subject = "alice";
  r.subject_attributes["community"] = core::Bag(core::AttributeValue("vo-physics"));
  r.resource = "dataset";
  r.action = "read";
  r.audience = "storage-provider";
  return r;
}

class CapabilityTest : public ::testing::Test {
 protected:
  CapabilityTest()
      : key_(crypto::KeyPair::generate("cas")),
        clock_(1000),
        service_("cas", key_, community_pdp(), clock_, /*validity_ms=*/500) {
    trust_.add_trusted_key(key_);
  }

  crypto::KeyPair key_;
  common::ManualClock clock_;
  CapabilityService service_;
  crypto::TrustStore trust_;
};

// ---------------------------------------------------------------------
// Issuance (pre-screening)
// ---------------------------------------------------------------------

TEST_F(CapabilityTest, IssuesForAuthorizedMember) {
  const IssueResult r = service_.issue(member_request());
  ASSERT_TRUE(r.token.has_value());
  EXPECT_EQ(r.token->assertion.subject, "alice");
  EXPECT_EQ(r.token->assertion.conditions.audience, "storage-provider");
  EXPECT_EQ(r.token->assertion.authz->resource, "dataset");
  EXPECT_EQ(service_.issued_count(), 1u);
}

TEST_F(CapabilityTest, RefusesNonMember) {
  CapabilityRequest r = member_request();
  r.subject_attributes["community"] = core::Bag(core::AttributeValue("vo-biology"));
  const IssueResult result = service_.issue(r);
  EXPECT_FALSE(result.token.has_value());
  EXPECT_TRUE(result.screening_decision.is_deny());
  EXPECT_EQ(service_.refused_count(), 1u);
}

TEST_F(CapabilityTest, RefusesOutOfScopeAction) {
  CapabilityRequest r = member_request();
  r.action = "delete";
  EXPECT_FALSE(service_.issue(r).token.has_value());
}

// ---------------------------------------------------------------------
// Gate (provider side, Fig 2 step IV)
// ---------------------------------------------------------------------

TEST_F(CapabilityTest, GateAdmitsValidTokenWithoutLocalPdp) {
  const auto token = *service_.issue(member_request()).token;
  CapabilityGate gate("storage-provider", trust_, clock_, nullptr);
  const GateResult g = gate.admit(token, "dataset", "read");
  EXPECT_TRUE(g.allowed);
  EXPECT_EQ(g.token_status, tokens::TokenValidity::kValid);
}

TEST_F(CapabilityTest, GateRejectsExpiredToken) {
  const auto token = *service_.issue(member_request()).token;
  clock_.advance(500);  // exactly at not_on_or_after
  CapabilityGate gate("storage-provider", trust_, clock_, nullptr);
  const GateResult g = gate.admit(token, "dataset", "read");
  EXPECT_FALSE(g.allowed);
  EXPECT_EQ(g.token_status, tokens::TokenValidity::kExpired);
}

TEST_F(CapabilityTest, GateRejectsWrongAudience) {
  const auto token = *service_.issue(member_request()).token;
  CapabilityGate gate("other-provider", trust_, clock_, nullptr);
  EXPECT_FALSE(gate.admit(token, "dataset", "read").allowed);
}

TEST_F(CapabilityTest, GateRejectsScopeMismatch) {
  const auto token = *service_.issue(member_request()).token;
  CapabilityGate gate("storage-provider", trust_, clock_, nullptr);
  // Token permits (dataset, read); asking for anything else fails.
  EXPECT_FALSE(gate.admit(token, "dataset", "write").allowed);
  EXPECT_FALSE(gate.admit(token, "other-resource", "read").allowed);
}

TEST_F(CapabilityTest, GateRejectsTamperedToken) {
  auto token = *service_.issue(member_request()).token;
  token.assertion.authz->action = "delete";  // escalate the capability
  CapabilityGate gate("storage-provider", trust_, clock_, nullptr);
  const GateResult g = gate.admit(token, "dataset", "delete");
  EXPECT_FALSE(g.allowed);
  EXPECT_EQ(g.token_status, tokens::TokenValidity::kBadSignature);
}

TEST_F(CapabilityTest, GateRejectsUntrustedIssuer) {
  const auto rogue_key = crypto::KeyPair::generate("rogue-cas");
  CapabilityService rogue("rogue-cas", rogue_key, community_pdp(), clock_, 500);
  const auto token = *rogue.issue(member_request()).token;
  CapabilityGate gate("storage-provider", trust_, clock_, nullptr);
  const GateResult g = gate.admit(token, "dataset", "read");
  EXPECT_FALSE(g.allowed);
  EXPECT_EQ(g.token_status, tokens::TokenValidity::kUntrustedIssuer);
}

TEST_F(CapabilityTest, ProviderLocalPolicyHasFinalSay) {
  // The paper: the capability pre-screens, but "resource providers may
  // impose their own restrictions". Local policy denies subjects whose
  // token carries community=vo-physics outside business hours — here we
  // simply deny alice by name to show the final-say path.
  auto local_store = std::make_shared<core::PolicyStore>();
  core::Policy local;
  local.policy_id = "provider-restrictions";
  local.rule_combining = "first-applicable";
  core::Rule ban;
  ban.id = "ban-alice";
  ban.effect = core::Effect::kDeny;
  core::Target t;
  t.require(core::Category::kSubject, core::attrs::kSubjectId,
            core::AttributeValue("alice"));
  ban.target = std::move(t);
  local.rules.push_back(std::move(ban));
  core::Rule rest;
  rest.id = "permit-rest";
  rest.effect = core::Effect::kPermit;
  local.rules.push_back(std::move(rest));
  local_store->add(std::move(local));
  auto local_pdp = std::make_shared<core::Pdp>(local_store);

  CapabilityGate gate("storage-provider", trust_, clock_, local_pdp);

  // Alice has a perfectly valid capability, but the provider says no.
  const auto alice_token = *service_.issue(member_request()).token;
  const GateResult g = gate.admit(alice_token, "dataset", "read");
  EXPECT_FALSE(g.allowed);
  EXPECT_EQ(g.token_status, tokens::TokenValidity::kValid);
  EXPECT_TRUE(g.local_decision.is_deny());

  // Bob sails through both layers.
  CapabilityRequest bob = member_request();
  bob.subject = "bob";
  const auto bob_token = *service_.issue(bob).token;
  EXPECT_TRUE(gate.admit(bob_token, "dataset", "read").allowed);
}

TEST_F(CapabilityTest, TokenAttributesFeedProviderPolicy) {
  // Provider policy keyed off the *token's* community attribute — the
  // attributes the CAS vetted, not self-claimed ones.
  auto local_store = std::make_shared<core::PolicyStore>();
  core::Policy local;
  local.policy_id = "community-gate";
  core::Rule r;
  r.id = "physics-only";
  r.effect = core::Effect::kPermit;
  r.condition = core::make_apply(
      "any-of", core::function_ref("string-equal"), core::lit("vo-physics"),
      core::designator(core::Category::kSubject, "community",
                       core::DataType::kString));
  local.rules.push_back(std::move(r));
  local_store->add(std::move(local));
  CapabilityGate gate("storage-provider", trust_, clock_,
                      std::make_shared<core::Pdp>(local_store));

  const auto token = *service_.issue(member_request()).token;
  EXPECT_TRUE(gate.admit(token, "dataset", "read").allowed);
}

}  // namespace
}  // namespace mdac::capability
