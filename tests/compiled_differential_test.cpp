// Compiled-vs-interpreted differential suite (ISSUE 3 satellite;
// extended with PolicySet trees, references and lowered obligation
// programs by ISSUE 5).
//
// The compiled policy programs (core/compiled.hpp) claim bit-identical
// decisions to the interpreted AST path; this suite proves it the only
// way that scales — randomized differential testing. Seeded,
// federation-shaped policy sets (the exact generators the benchmark
// harness measures, bench/workload.hpp) plus richer random generators
// exercising conditions, obligations, combining algorithms,
// indeterminate paths, and nested PolicySet trees (references —
// resolvable, dangling and cyclic — included), all evaluated through
// both PdpConfig::use_compiled settings; every decision — type, extent,
// status text, obligations, advice — must compare equal, and request
// cache fingerprints must be untouched by evaluation on either path
// (the decision cache keys off them, so a divergence would poison
// shared caches). Runs in the -DMDAC_SANITIZE=ON tree like every ctest
// target, which is where the arena/pointer lifetime claims of the
// compiled artifact earn their keep.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/request_key.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/compiled.hpp"
#include "core/expression.hpp"
#include "core/pdp.hpp"
#include "core/serialization.hpp"
#include "pap/repository.hpp"
#include "workload.hpp"

namespace mdac::core {
namespace {

PdpConfig compiled_cfg() {
  PdpConfig cfg;
  cfg.use_compiled = true;
  return cfg;
}

PdpConfig interpreted_cfg() {
  PdpConfig cfg;
  cfg.use_compiled = false;
  return cfg;
}

/// Evaluates every request through both paths (single and batch entry
/// points) and asserts decision + fingerprint equivalence.
void expect_equivalent(std::shared_ptr<PolicyStore> store,
                       const std::vector<RequestContext>& requests,
                       const std::string& label) {
  Pdp compiled(store, compiled_cfg());
  Pdp interpreted(store, interpreted_cfg());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const cache::RequestKey key_before = cache::fingerprint(requests[i]);
    const PdpResult rc = compiled.evaluate_with_metrics(requests[i]);
    const PdpResult ri = interpreted.evaluate_with_metrics(requests[i]);
    ASSERT_EQ(rc.decision, ri.decision)
        << label << ": request " << i << " diverged (compiled="
        << rc.decision.describe() << ", interpreted=" << ri.decision.describe()
        << ")";
    // Candidate pruning is shared by both paths; a compiled/interpreted
    // split here would mean the index consulted different state.
    EXPECT_EQ(rc.candidates_skipped, ri.candidates_skipped) << label;
    // Evaluation must never mutate the request: the decision cache keys
    // off this fingerprint on both sides of the config flag.
    const cache::RequestKey key_after = cache::fingerprint(requests[i]);
    ASSERT_EQ(key_before, key_after) << label << ": request " << i;
  }

  const auto batch_compiled =
      compiled.evaluate_batch(std::span<const RequestContext>(requests));
  const auto batch_interpreted =
      interpreted.evaluate_batch(std::span<const RequestContext>(requests));
  ASSERT_EQ(batch_compiled.size(), batch_interpreted.size());
  for (std::size_t i = 0; i < batch_compiled.size(); ++i) {
    ASSERT_EQ(batch_compiled[i].decision, batch_interpreted[i].decision)
        << label << ": batch request " << i;
  }
}

// ---------------------------------------------------------------------
// Federation-shaped workloads straight from the benchmark harness
// ---------------------------------------------------------------------

TEST(CompiledDifferentialTest, BenchmarkResourceWorkload) {
  auto store = bench::make_policy_store(60, 4);
  common::Rng rng(2024);
  std::vector<RequestContext> requests;
  for (int i = 0; i < 400; ++i) {
    requests.push_back(bench::random_request(rng, 60, 4));
  }
  expect_equivalent(store, requests, "resource workload");
}

TEST(CompiledDifferentialTest, BenchmarkFederationWorkloads) {
  for (const int n_domains : {1, 3, 8}) {
    auto store = bench::make_domain_policy_store(n_domains, 64, 3);
    common::Rng rng(7000 + static_cast<std::uint64_t>(n_domains));
    std::vector<RequestContext> requests;
    for (int i = 0; i < 300; ++i) {
      requests.push_back(bench::random_domain_request(rng, n_domains, 64, 3));
    }
    expect_equivalent(store, requests,
                      std::to_string(n_domains) + "-domain federation");
  }
}

TEST(CompiledDifferentialTest, CompiledPathActuallyEngages) {
  auto store = bench::make_policy_store(10, 2);
  Pdp pdp(store, compiled_cfg());
  common::Rng rng(1);
  const PdpResult r = pdp.evaluate_with_metrics(bench::random_request(rng, 10, 2));
  EXPECT_EQ(r.compile.compiled_policies, 10u);
  EXPECT_EQ(r.compile.interpreted_nodes, 0u);
  EXPECT_GT(r.compile.matches, 0u);

  Pdp off(store, interpreted_cfg());
  const PdpResult ri = off.evaluate_with_metrics(bench::random_request(rng, 10, 2));
  EXPECT_EQ(ri.compile.compiled_policies, 0u);
}

// ---------------------------------------------------------------------
// Randomized rich policies: conditions, obligations, every combining
// algorithm, indeterminate paths
// ---------------------------------------------------------------------

const std::vector<std::string>& combining_algorithms() {
  static const std::vector<std::string> algs = {
      "deny-overrides",     "permit-overrides",     "first-applicable",
      "only-one-applicable", "deny-unless-permit",  "permit-unless-deny",
      "ordered-deny-overrides", "not-a-real-algorithm"};
  return algs;
}

ExprPtr random_condition(common::Rng& rng) {
  switch (rng.uniform_int(0, 6)) {
    case 0:  // role equality
      return make_apply("string-equal",
                        designator(Category::kSubject, attrs::kRole,
                                   DataType::kString),
                        lit("role-" + std::to_string(rng.uniform_int(0, 3))));
    case 1:  // integer comparison over a sometimes-missing attribute
      return make_apply("integer-less-than",
                        designator(Category::kEnvironment, "request-cost",
                                   DataType::kInteger,
                                   /*must_be_present=*/rng.chance(0.5)),
                        lit(static_cast<std::int64_t>(rng.uniform_int(0, 100))));
    case 2:  // boolean combinator
      return make_apply("and", random_condition(rng), random_condition(rng));
    case 3:  // higher-order: compiled path must fall back to the AST
      return make_apply("any-of", function_ref("string-equal"),
                        lit("role-" + std::to_string(rng.uniform_int(0, 3))),
                        designator(Category::kSubject, attrs::kRole,
                                   DataType::kString));
    case 4:  // unknown function: identical error text on both paths
      return make_apply("no-such-function", lit("x"));
    case 5:  // non-boolean condition result
      return lit(static_cast<std::int64_t>(7));
    default:  // negation with a nested lookup
      return make_apply("not",
                        make_apply("string-equal",
                                   designator(Category::kAction, attrs::kActionId,
                                              DataType::kString),
                                   lit("delete")));
  }
}

Policy random_rich_policy(common::Rng& rng, int index) {
  Policy p;
  p.policy_id = "rich-" + std::to_string(index);
  p.rule_combining = rng.pick(combining_algorithms());
  if (rng.chance(0.7)) {
    p.target_spec.require(
        Category::kResource, attrs::kResourceId,
        AttributeValue("res-" + std::to_string(rng.uniform_int(0, 9))));
  }
  if (rng.chance(0.3)) {
    p.target_spec.require_any(
        Category::kSubject, attrs::kSubjectDomain,
        {AttributeValue("dom-a"), AttributeValue("dom-b")});
  }

  const int n_rules = static_cast<int>(rng.uniform_int(1, 4));
  for (int r = 0; r < n_rules; ++r) {
    Rule rule;
    rule.id = p.policy_id + ":rule-" + std::to_string(r);
    rule.effect = rng.chance(0.5) ? Effect::kPermit : Effect::kDeny;
    if (rng.chance(0.5)) {
      Target t;
      t.require(Category::kSubject, attrs::kRole,
                AttributeValue("role-" + std::to_string(rng.uniform_int(0, 3))));
      if (rng.chance(0.3)) {
        // A conjunct the request may not carry at all (kNoMatch path) or
        // carry with the wrong type (fall-through to the general path).
        t.require(Category::kEnvironment, "site",
                  AttributeValue("site-" + std::to_string(rng.uniform_int(0, 2))));
      }
      rule.target = std::move(t);
    }
    if (rng.chance(0.6)) rule.condition = random_condition(rng);
    if (rng.chance(0.4)) {
      ObligationExpr ob;
      ob.id = rule.id + ":log";
      ob.fulfill_on = rng.chance(0.5) ? Effect::kPermit : Effect::kDeny;
      ob.advice = rng.chance(0.3);
      ob.assignments.push_back(AttributeAssignmentExpr{
          "who", designator(Category::kSubject, attrs::kSubjectId,
                            DataType::kString, /*must_be_present=*/rng.chance(0.5))});
      rule.obligations.push_back(std::move(ob));
    }
    p.rules.push_back(std::move(rule));
  }

  if (rng.chance(0.3)) {
    ObligationExpr ob;
    ob.id = p.policy_id + ":audit";
    ob.fulfill_on = Effect::kPermit;
    ob.assignments.push_back(
        AttributeAssignmentExpr{"resource",
                                designator(Category::kResource, attrs::kResourceId,
                                           DataType::kString)});
    p.obligations.push_back(std::move(ob));
  }
  return p;
}

RequestContext random_rich_request(common::Rng& rng) {
  RequestContext req = RequestContext::make(
      "user-" + std::to_string(rng.uniform_int(0, 20)),
      "res-" + std::to_string(rng.uniform_int(0, 9)),
      rng.chance(0.8) ? "read" : "delete");
  if (rng.chance(0.8)) {
    req.add(Category::kSubject, attrs::kRole,
            AttributeValue("role-" + std::to_string(rng.uniform_int(0, 4))));
  }
  if (rng.chance(0.5)) {
    req.add(Category::kSubject, attrs::kSubjectDomain,
            AttributeValue(rng.chance(0.5) ? "dom-a" : "dom-c"));
  }
  if (rng.chance(0.5)) {
    // Sometimes the right type, sometimes a string where an integer is
    // expected (exercises the type-filtered fall-back path).
    if (rng.chance(0.7)) {
      req.add(Category::kEnvironment, "request-cost",
              AttributeValue(static_cast<std::int64_t>(rng.uniform_int(0, 120))));
    } else {
      req.add(Category::kEnvironment, "request-cost", AttributeValue("many"));
    }
  }
  if (rng.chance(0.4)) {
    req.add(Category::kEnvironment, "site",
            AttributeValue("site-" + std::to_string(rng.uniform_int(0, 3))));
  }
  return req;
}

TEST(CompiledDifferentialTest, RandomizedRichPolicies) {
  // Several seeds x fresh stores: every run is deterministic, the union
  // covers conditions (lowered and AST-fallback), obligations on both
  // effects, advice, indeterminate targets/conditions and unknown
  // combining algorithms.
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    common::Rng rng(seed);
    auto store = std::make_shared<PolicyStore>();
    for (int i = 0; i < 24; ++i) store->add(random_rich_policy(rng, i));
    std::vector<RequestContext> requests;
    for (int i = 0; i < 250; ++i) requests.push_back(random_rich_request(rng));
    expect_equivalent(store, requests, "rich seed " + std::to_string(seed));
  }
}

TEST(CompiledDifferentialTest, ThrowingResolverLeavesScratchConsistent) {
  // A user-supplied resolver may throw out of a compiled condition
  // mid-program; the Pdp's persistent scratch must be restored (no
  // orphaned stack entries, no raised args depth), because PEP frontends
  // catch per-request exceptions and keep the Pdp serving.
  struct ThrowingResolver final : AttributeResolver {
    bool armed = true;
    std::optional<Bag> resolve(Category, const std::string& id,
                               const RequestContext&) override {
      if (armed && id == "request-cost") throw std::runtime_error("pip down");
      return std::nullopt;
    }
  };

  Policy p;
  p.policy_id = "cond";
  p.rule_combining = "permit-unless-deny";
  Rule r;
  r.id = "deny-expensive";
  r.effect = Effect::kDeny;
  r.condition = make_apply(
      "and",
      make_apply("integer-less-than",
                 designator(Category::kEnvironment, "request-cost",
                            DataType::kInteger, /*must_be_present=*/true),
                 lit(static_cast<std::int64_t>(10))),
      make_apply("string-equal",
                 designator(Category::kAction, attrs::kActionId, DataType::kString),
                 lit("read")));
  p.rules.push_back(std::move(r));

  auto store = std::make_shared<PolicyStore>();
  store->add(std::move(p));
  Pdp pdp(store, compiled_cfg());
  ThrowingResolver resolver;
  pdp.set_resolver(&resolver);

  const RequestContext req = RequestContext::make("u", "r", "read");
  EXPECT_THROW(pdp.evaluate(req), std::runtime_error);
  EXPECT_THROW(pdp.evaluate(req), std::runtime_error);

  // Disarm: evaluation proceeds on clean scratch and matches the
  // interpreter (missing must-be-present attribute -> condition error ->
  // permit-unless-deny falls back to permit).
  resolver.armed = false;
  const Decision compiled_decision = pdp.evaluate(req);
  Pdp interpreted(store, interpreted_cfg());
  interpreted.set_resolver(&resolver);
  EXPECT_EQ(compiled_decision, interpreted.evaluate(req));
  EXPECT_TRUE(compiled_decision.is_permit());
}

// ---------------------------------------------------------------------
// Randomized nested PolicySet trees: set-level targets and obligations,
// every policy-combining algorithm, nested sets, references (resolvable,
// dangling and cyclic) — the federation shape the tree compiler exists
// for (ISSUE 5 tentpole pin)
// ---------------------------------------------------------------------

PolicyNodePtr random_set_node(common::Rng& rng, int depth, int* counter) {
  PolicySet set;
  set.policy_set_id = "set-" + std::to_string((*counter)++);
  set.policy_combining = rng.pick(combining_algorithms());
  if (rng.chance(0.5)) {
    set.target_spec.require(
        Category::kResource, attrs::kResourceId,
        AttributeValue("res-" + std::to_string(rng.uniform_int(0, 9))));
  }
  if (rng.chance(0.3)) {
    set.target_spec.require_any(
        Category::kSubject, attrs::kSubjectDomain,
        {AttributeValue("dom-a"), AttributeValue("dom-b")});
  }
  if (rng.chance(0.4)) {
    ObligationExpr ob;
    ob.id = set.policy_set_id + ":audit";
    ob.fulfill_on = rng.chance(0.5) ? Effect::kPermit : Effect::kDeny;
    ob.advice = rng.chance(0.3);
    ob.assignments.push_back(AttributeAssignmentExpr{
        "who", designator(Category::kSubject, attrs::kSubjectId, DataType::kString,
                          /*must_be_present=*/rng.chance(0.3))});
    set.obligations.push_back(std::move(ob));
  }

  const int n_children = static_cast<int>(rng.uniform_int(1, 4));
  for (int c = 0; c < n_children; ++c) {
    const int kind = static_cast<int>(rng.uniform_int(0, depth > 0 ? 3 : 2));
    if (kind == 3) {
      set.add_node(random_set_node(rng, depth - 1, counter));
    } else if (kind == 2) {
      // References: mostly to the store's top-level rich policies,
      // sometimes dangling (the unresolved-reference error path).
      if (rng.chance(0.8)) {
        set.add_reference("rich-" + std::to_string(rng.uniform_int(0, 7)));
      } else {
        set.add_reference("ghost-" + std::to_string(rng.uniform_int(0, 3)));
      }
    } else {
      set.add(random_rich_policy(rng, 100 * *counter + c));
    }
  }
  return std::make_unique<PolicySet>(std::move(set));
}

TEST(CompiledDifferentialTest, RandomizedNestedSetTrees) {
  for (const std::uint64_t seed : {5u, 17u, 91u}) {
    common::Rng rng(seed);
    auto store = std::make_shared<PolicyStore>();
    // Referencable top-level policies first, then the set trees.
    for (int i = 0; i < 8; ++i) store->add(random_rich_policy(rng, i));
    int counter = 0;
    for (int s = 0; s < 6; ++s) {
      store->add(random_set_node(rng, /*depth=*/2, &counter));
    }
    std::vector<RequestContext> requests;
    for (int i = 0; i < 250; ++i) requests.push_back(random_rich_request(rng));
    expect_equivalent(store, requests, "set-tree seed " + std::to_string(seed));
  }
}

TEST(CompiledDifferentialTest, SetTreesViaRepositoryAttachments) {
  // The PAP path: artifacts compiled at issue time and attached by
  // load_into — compiled references then execute the *attached* program
  // of their referent instead of interpreting it. Differential over the
  // exact same store object on both config flags.
  common::Rng rng(123);
  auto store = std::make_shared<PolicyStore>();
  common::ManualClock clock;
  pap::PolicyRepository repo(clock);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(repo.submit(node_to_string(random_rich_policy(rng, i)), "t"));
    ASSERT_TRUE(repo.issue("rich-" + std::to_string(i), "t"));
  }
  int counter = 0;
  for (int s = 0; s < 4; ++s) {
    const auto set = random_set_node(rng, /*depth=*/2, &counter);
    ASSERT_TRUE(repo.submit(node_to_string(*set), "t"));
    ASSERT_TRUE(repo.issue(set->id(), "t"));
  }
  ASSERT_EQ(repo.load_into(store.get()), 12u);

  std::vector<RequestContext> requests;
  for (int i = 0; i < 250; ++i) requests.push_back(random_rich_request(rng));
  expect_equivalent(store, requests, "repository-attached set trees");
}

TEST(CompiledDifferentialTest, ReferenceCyclesMatchInterpreter) {
  // cyc-a -> cyc-b -> cyc-a: the interpreter detects the cycle through
  // the evaluation context; the compiled trees must produce the exact
  // same Indeterminate (status text included).
  PolicySet a;
  a.policy_set_id = "cyc-a";
  a.policy_combining = "deny-overrides";
  a.add_reference("cyc-b");
  {
    Policy inner;
    inner.policy_id = "cyc-a:inner";
    Rule r;
    r.id = "permit";
    r.effect = Effect::kPermit;
    inner.rules.push_back(std::move(r));
    a.add(std::move(inner));
  }
  PolicySet b;
  b.policy_set_id = "cyc-b";
  b.policy_combining = "permit-overrides";
  b.add_reference("cyc-a");

  auto store = std::make_shared<PolicyStore>();
  store->add(std::move(a));
  store->add(std::move(b));
  expect_equivalent(store, {RequestContext::make("u", "r", "read")},
                    "reference cycle");
}

TEST(CompiledDifferentialTest, CompiledSetTreesEngage) {
  // The set-level CompileStats surface through PdpResult::compile: trees
  // actually run compiled (no interpreted top-level nodes), and sets,
  // references and lowered obligations are all accounted.
  common::Rng rng(7);
  auto store = std::make_shared<PolicyStore>();
  for (int i = 0; i < 8; ++i) store->add(random_rich_policy(rng, i));
  int counter = 0;
  bool saw_reference = false;
  while (!saw_reference) {
    auto node = random_set_node(rng, /*depth=*/2, &counter);
    saw_reference = !referenced_policy_ids(*node).empty();
    store->add(std::move(node));
  }

  Pdp pdp(store, compiled_cfg());
  const PdpResult r = pdp.evaluate_with_metrics(random_rich_request(rng));
  EXPECT_EQ(r.compile.interpreted_nodes, 0u);
  EXPECT_GT(r.compile.policy_sets, 0u);
  EXPECT_GT(r.compile.references, 0u);
  EXPECT_GT(r.compile.compiled_policies, 8u);  // top-level + in-tree leaves
  EXPECT_GT(r.compile.obligations, 0u);
}

TEST(CompiledDifferentialTest, CompileDiagnosticsSurfaceUnlowerableParts) {
  Policy p;
  p.policy_id = "diag";
  p.rule_combining = "bogus-combiner";
  Rule r;
  r.id = "r";
  r.effect = Effect::kPermit;
  r.condition = make_apply("no-such-function", lit("x"));
  p.rules.push_back(std::move(r));

  const auto compiled = CompiledPolicyTree::compile(p);
  EXPECT_FALSE(compiled->diagnostics().empty());
  EXPECT_GE(compiled->stats().ast_fallbacks, 1u);

  // And the unknown-combiner decision still matches the interpreter.
  auto store = std::make_shared<PolicyStore>();
  store->add(p.clone());
  expect_equivalent(store, {RequestContext::make("u", "r", "read")},
                    "diagnostics policy");
}

}  // namespace
}  // namespace mdac::core
