// Parameterised federation sweep: a VO of N domains must behave like the
// paper's Fig. 1 at every scale — every member's users reach every other
// member's shared resource iff they hold the entitled role, token/trust
// failures stay local, and domain autonomy survives growth.
#include <gtest/gtest.h>

#include <memory>

#include "domain/domain.hpp"

namespace mdac::domain {
namespace {

core::Policy shared_policy() {
  core::Policy p;
  p.policy_id = "vo-policy";
  p.rule_combining = "first-applicable";
  core::Rule permit;
  permit.id = "analysts-read";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kSubject, core::attrs::kRole,
            core::AttributeValue("analyst"));
  t.require(core::Category::kResource, core::attrs::kResourceId,
            core::AttributeValue("shared"));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  core::Rule deny;
  deny.id = "deny";
  deny.effect = core::Effect::kDeny;
  core::Target dt;
  dt.require(core::Category::kResource, core::attrs::kResourceId,
             core::AttributeValue("shared"));
  deny.target = std::move(dt);
  p.rules.push_back(std::move(deny));
  return p;
}

class FederationSweep : public ::testing::TestWithParam<int> {
 protected:
  FederationSweep() : clock_(1'000'000), vo_("sweep-vo") {
    const int n = GetParam();
    for (int i = 0; i < n; ++i) {
      domains_.push_back(
          std::make_unique<Domain>("domain-" + std::to_string(i), clock_));
      Domain& d = *domains_.back();
      // Even-indexed domains host an analyst; odd ones a student.
      const std::string role = i % 2 == 0 ? "analyst" : "student";
      d.register_user("user-" + std::to_string(i),
                      {{core::attrs::kRole, core::Bag(core::AttributeValue(role))}});
      vo_.add_member(&d);
    }
    vo_.establish_pairwise_trust();
    vo_.distribute_policy(shared_policy());
  }

  common::ManualClock clock_;
  std::vector<std::unique_ptr<Domain>> domains_;
  VirtualOrganisation vo_;
};

TEST_P(FederationSweep, FullAccessMatrixMatchesRoles) {
  const int n = GetParam();
  for (int from = 0; from < n; ++from) {
    for (int to = 0; to < n; ++to) {
      if (from == to) continue;
      const auto token = domains_[from]->issue_identity_assertion(
          "user-" + std::to_string(from), domains_[to]->name(), 60'000);
      const auto result =
          domains_[to]->handle_cross_domain_request(token, "shared", "read");
      const bool should_pass = from % 2 == 0;  // analysts only
      EXPECT_EQ(result.allowed, should_pass)
          << "from=" << from << " to=" << to << ": " << result.reason;
    }
  }
}

TEST_P(FederationSweep, TokenForOneDomainUselessAtAnother) {
  if (GetParam() < 3) GTEST_SKIP() << "needs three domains";
  // Audience restriction: a token minted for domain-1 must not open
  // domain-2, even though both trust the issuer.
  const auto token =
      domains_[0]->issue_identity_assertion("user-0", "domain-1", 60'000);
  EXPECT_TRUE(domains_[1]->handle_cross_domain_request(token, "shared", "read").allowed);
  const auto replayed =
      domains_[2]->handle_cross_domain_request(token, "shared", "read");
  EXPECT_FALSE(replayed.allowed);
  EXPECT_EQ(replayed.token_status, tokens::TokenValidity::kWrongAudience);
}

TEST_P(FederationSweep, RemovingTrustIsLocal) {
  if (GetParam() < 3) GTEST_SKIP() << "needs three domains";
  // Domain-1 stops trusting domain-0's IdP; domain-2 is unaffected.
  domains_[1]->trust_store().remove_trusted_key(
      domains_[0]->idp_key().public_key().key_id);
  const auto t1 = domains_[0]->issue_identity_assertion("user-0", "domain-1", 60'000);
  const auto t2 = domains_[0]->issue_identity_assertion("user-0", "domain-2", 60'000);
  EXPECT_FALSE(domains_[1]->handle_cross_domain_request(t1, "shared", "read").allowed);
  EXPECT_TRUE(domains_[2]->handle_cross_domain_request(t2, "shared", "read").allowed);
}

TEST_P(FederationSweep, HistoryStaysPerDomain) {
  if (GetParam() < 2) GTEST_SKIP();
  const auto token =
      domains_[0]->issue_identity_assertion("user-0", "domain-1", 60'000);
  ASSERT_TRUE(domains_[1]->handle_cross_domain_request(token, "shared", "read").allowed);
  EXPECT_EQ(domains_[1]->history().size(), 1u);
  for (std::size_t i = 2; i < domains_.size(); ++i) {
    EXPECT_EQ(domains_[i]->history().size(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(VoSizes, FederationSweep, ::testing::Values(2, 3, 5, 9));

}  // namespace
}  // namespace mdac::domain
