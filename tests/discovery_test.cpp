#include <gtest/gtest.h>

#include "core/serialization.hpp"
#include "net/discovery.hpp"
#include "pap/change_notifier.hpp"

namespace mdac {
namespace {

// ---------------------------------------------------------------------
// Discovery service (§3.2 PDP location)
// ---------------------------------------------------------------------

class DiscoveryTest : public ::testing::Test {
 protected:
  DiscoveryTest() : network_(sim_), registry_(network_, "registry") {
    network_.set_default_link({5, 0, 0.0});
  }

  net::Simulator sim_;
  net::Network network_;
  net::DiscoveryService registry_;
};

TEST_F(DiscoveryTest, RegisterAndLookup) {
  net::RpcNode pdp(network_, "domain/pdp");
  net::DiscoveryRegistrant registrant(pdp, "registry", "pdp", 1000);
  registrant.register_once();
  // run_until: a plain run() would also drain the RPC-timeout no-op and
  // fast-forward the clock to the lease boundary.
  sim_.run_until(50);

  net::RpcNode client(network_, "client");
  net::DiscoveryClient lookup(client, "registry");
  std::vector<std::string> found;
  lookup.lookup("pdp", 1000, [&](std::vector<std::string> r) { found = r; });
  sim_.run_until(100);
  EXPECT_EQ(found, (std::vector<std::string>{"domain/pdp"}));
  EXPECT_EQ(registry_.registrations(), 1u);
  EXPECT_EQ(registry_.lookups(), 1u);
}

TEST_F(DiscoveryTest, UnknownKindIsEmpty) {
  net::RpcNode client(network_, "client");
  net::DiscoveryClient lookup(client, "registry");
  std::vector<std::string> found{"sentinel"};
  lookup.lookup("nothing-here", 1000,
                [&](std::vector<std::string> r) { found = r; });
  sim_.run();
  EXPECT_TRUE(found.empty());
}

TEST_F(DiscoveryTest, LeaseExpiresWithoutRenewal) {
  net::RpcNode pdp(network_, "domain/pdp");
  net::DiscoveryRegistrant registrant(pdp, "registry", "pdp", /*lease=*/100);
  registrant.register_once();
  sim_.run();
  EXPECT_EQ(registry_.providers_of("pdp").size(), 1u);

  sim_.schedule(200, [] {});  // let the lease lapse
  sim_.run();
  EXPECT_TRUE(registry_.providers_of("pdp").empty());
}

TEST_F(DiscoveryTest, RenewalKeepsLeaseAlive) {
  net::RpcNode pdp(network_, "domain/pdp");
  net::DiscoveryRegistrant registrant(pdp, "registry", "pdp", /*lease=*/100);
  registrant.start_renewal();
  sim_.run_until(450);
  EXPECT_EQ(registry_.providers_of("pdp").size(), 1u);

  registrant.stop();
  sim_.run_until(1000);
  EXPECT_TRUE(registry_.providers_of("pdp").empty());
}

TEST_F(DiscoveryTest, MultipleProvidersOfAKind) {
  net::RpcNode a(network_, "pdp/a"), b(network_, "pdp/b");
  net::DiscoveryRegistrant ra(a, "registry", "pdp", 1000);
  net::DiscoveryRegistrant rb(b, "registry", "pdp", 1000);
  ra.register_once();
  rb.register_once();
  sim_.run();
  const auto providers = registry_.providers_of("pdp");
  EXPECT_EQ(providers.size(), 2u);
}

TEST_F(DiscoveryTest, ReRegistrationRefreshesNotDuplicates) {
  net::RpcNode pdp(network_, "domain/pdp");
  net::DiscoveryRegistrant registrant(pdp, "registry", "pdp", 1000);
  registrant.register_once();
  sim_.run();
  registrant.register_once();
  sim_.run();
  EXPECT_EQ(registry_.providers_of("pdp").size(), 1u);
  EXPECT_EQ(registry_.registrations(), 2u);
}

TEST_F(DiscoveryTest, MalformedRegistrationRejected) {
  net::RpcNode raw(network_, "raw");
  std::optional<std::string> response;
  raw.call("registry", "register", "too|few", 1000,
           [&](std::optional<std::string> r) { response = r; });
  sim_.run();
  EXPECT_EQ(response, "bad-request");
  raw.call("registry", "register", "kind|node|not-a-number", 1000,
           [&](std::optional<std::string> r) { response = r; });
  sim_.run();
  EXPECT_EQ(response, "bad-request");
}

// ---------------------------------------------------------------------
// Change notification -> cache invalidation
// ---------------------------------------------------------------------

TEST(ChangeNotifierTest, PolicyChangeFlushesRemoteCaches) {
  net::Simulator sim;
  net::Network network(sim);
  network.set_default_link({5, 0, 0.0});
  common::ManualClock repo_clock;

  pap::PolicyRepository repo(repo_clock);
  pap::ChangeNotifier notifier(network, "pap/notifier", repo);

  common::ManualClock cache_clock;
  cache::DecisionCache cache_a(cache_clock, 1'000'000);
  cache::DecisionCache cache_b(cache_clock, 1'000'000);
  pap::CacheInvalidationListener pep_a(network, "pep/a", cache_a);
  pap::CacheInvalidationListener pep_b(network, "pep/b", cache_b);
  notifier.add_subscriber("pep/a");
  notifier.add_subscriber("pep/b");

  // Warm the caches.
  const auto req = core::RequestContext::make("alice", "doc", "read");
  cache_a.insert(req, core::Decision::permit());
  cache_b.insert(req, core::Decision::permit());

  // No repository change: no broadcast.
  EXPECT_FALSE(notifier.notify_if_changed());
  sim.run();
  EXPECT_TRUE(cache_a.lookup(req).has_value());

  // A policy lands in the repository; notify flushes both caches.
  core::Policy p;
  p.policy_id = "new-policy";
  core::Rule r;
  r.id = "deny";
  r.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(r));
  ASSERT_TRUE(repo.submit(core::node_to_string(p), "admin"));
  EXPECT_TRUE(notifier.notify_if_changed());
  sim.run();

  EXPECT_FALSE(cache_a.lookup(req).has_value());
  EXPECT_FALSE(cache_b.lookup(req).has_value());
  EXPECT_EQ(pep_a.invalidations(), 1u);
  EXPECT_EQ(notifier.notifications_sent(), 2u);
}

TEST(ChangeNotifierTest, SecondCallWithoutChangeIsSilent) {
  net::Simulator sim;
  net::Network network(sim);
  common::ManualClock clock;
  pap::PolicyRepository repo(clock);
  pap::ChangeNotifier notifier(network, "pap/n", repo);

  core::Policy p;
  p.policy_id = "p";
  core::Rule r;
  r.id = "r";
  r.effect = core::Effect::kPermit;
  p.rules.push_back(std::move(r));
  ASSERT_TRUE(repo.submit(core::node_to_string(p), "admin"));
  EXPECT_TRUE(notifier.notify_if_changed());
  EXPECT_FALSE(notifier.notify_if_changed());
}

TEST(ChangeNotifierTest, LostNotificationLeavesTtlBackstop) {
  // The notifier is best-effort: with the link down, the cache keeps the
  // stale entry until its TTL expires — the layered defence.
  net::Simulator sim;
  net::Network network(sim);
  common::ManualClock repo_clock;
  pap::PolicyRepository repo(repo_clock);
  pap::ChangeNotifier notifier(network, "pap/n", repo);

  common::ManualClock cache_clock;
  cache::DecisionCache cache(cache_clock, /*ttl=*/500);
  pap::CacheInvalidationListener pep(network, "pep", cache);
  notifier.add_subscriber("pep");
  network.set_node_up("pep", false);  // partition

  const auto req = core::RequestContext::make("alice", "doc", "read");
  cache.insert(req, core::Decision::permit());
  notifier.broadcast("revocation!");
  sim.run();
  EXPECT_TRUE(cache.lookup(req).has_value());  // notification lost

  cache_clock.advance(500);  // TTL backstop
  EXPECT_FALSE(cache.lookup(req).has_value());
}

}  // namespace
}  // namespace mdac
