#include <gtest/gtest.h>

#include "cache/decision_cache.hpp"
#include "cache/ttl_cache.hpp"

namespace mdac::cache {
namespace {

using core::AttributeValue;
using core::Category;
using core::Decision;

// ---------------------------------------------------------------------
// Generic TTL+LRU cache
// ---------------------------------------------------------------------

TEST(TtlLruCacheTest, HitWithinTtl) {
  common::ManualClock clock;
  TtlLruCache<std::string, int> cache(clock, 100, 10);
  cache.insert("k", 42);
  EXPECT_EQ(cache.lookup("k"), 42);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(TtlLruCacheTest, ExpiresAfterTtl) {
  common::ManualClock clock;
  TtlLruCache<std::string, int> cache(clock, 100, 10);
  cache.insert("k", 42);
  clock.advance(99);
  EXPECT_TRUE(cache.lookup("k").has_value());
  clock.advance(1);  // now exactly at expiry
  EXPECT_FALSE(cache.lookup("k").has_value());
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TtlLruCacheTest, LruEvictionAtCapacity) {
  common::ManualClock clock;
  TtlLruCache<std::string, int> cache(clock, 1000, 2);
  cache.insert("a", 1);
  cache.insert("b", 2);
  EXPECT_TRUE(cache.lookup("a").has_value());  // a is now most-recent
  cache.insert("c", 3);                        // evicts b
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(TtlLruCacheTest, InsertRefreshesExistingEntry) {
  common::ManualClock clock;
  TtlLruCache<std::string, int> cache(clock, 100, 10);
  cache.insert("k", 1);
  clock.advance(90);
  cache.insert("k", 2);  // refresh TTL and value
  clock.advance(50);
  EXPECT_EQ(cache.lookup("k"), 2);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TtlLruCacheTest, InvalidateSingleAndAll) {
  common::ManualClock clock;
  TtlLruCache<std::string, int> cache(clock, 100, 10);
  cache.insert("a", 1);
  cache.insert("b", 2);
  EXPECT_TRUE(cache.invalidate("a"));
  EXPECT_FALSE(cache.invalidate("a"));
  EXPECT_FALSE(cache.lookup("a").has_value());
  cache.invalidate_all();
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TtlLruCacheTest, HitRatioComputed) {
  common::ManualClock clock;
  TtlLruCache<std::string, int> cache(clock, 100, 10);
  cache.insert("k", 1);
  (void)cache.lookup("k");
  (void)cache.lookup("k");
  (void)cache.lookup("missing");
  EXPECT_DOUBLE_EQ(cache.stats().hit_ratio(), 2.0 / 3.0);
}

// ---------------------------------------------------------------------
// Canonical request keys
// ---------------------------------------------------------------------

TEST(CanonicalKeyTest, EqualRequestsSameKey) {
  auto a = core::RequestContext::make("alice", "doc", "read");
  auto b = core::RequestContext::make("alice", "doc", "read");
  EXPECT_EQ(canonical_request_key(a), canonical_request_key(b));
}

TEST(CanonicalKeyTest, BagOrderDoesNotMatter) {
  core::RequestContext a;
  a.add(Category::kSubject, "role", AttributeValue("x"));
  a.add(Category::kSubject, "role", AttributeValue("y"));
  core::RequestContext b;
  b.add(Category::kSubject, "role", AttributeValue("y"));
  b.add(Category::kSubject, "role", AttributeValue("x"));
  EXPECT_EQ(canonical_request_key(a), canonical_request_key(b));
}

TEST(CanonicalKeyTest, DifferentRequestsDifferentKeys) {
  const auto a = core::RequestContext::make("alice", "doc", "read");
  const auto b = core::RequestContext::make("alice", "doc", "write");
  const auto c = core::RequestContext::make("bob", "doc", "read");
  EXPECT_NE(canonical_request_key(a), canonical_request_key(b));
  EXPECT_NE(canonical_request_key(a), canonical_request_key(c));
}

TEST(CanonicalKeyTest, TypeIsPartOfKey) {
  core::RequestContext a;
  a.add(Category::kSubject, "x", AttributeValue("1"));
  core::RequestContext b;
  b.add(Category::kSubject, "x", AttributeValue(std::int64_t{1}));
  EXPECT_NE(canonical_request_key(a), canonical_request_key(b));
}

// ---------------------------------------------------------------------
// DecisionCache + CachingEvaluator
// ---------------------------------------------------------------------

TEST(DecisionCacheTest, RoundTripWithObligations) {
  common::ManualClock clock;
  DecisionCache cache(clock, 1000);
  const auto req = core::RequestContext::make("alice", "doc", "read");
  Decision d = Decision::permit();
  d.obligations.push_back(core::ObligationInstance{"audit", {}});
  cache.insert(req, d);
  const auto hit = cache.lookup(req);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, d);
}

TEST(CachingEvaluatorTest, SecondCallServedFromCache) {
  common::ManualClock clock;
  DecisionCache cache(clock, 1000);
  int backend_calls = 0;
  CachingEvaluator evaluate(cache, [&](const core::RequestContext&) {
    ++backend_calls;
    return Decision::permit();
  });

  const auto req = core::RequestContext::make("alice", "doc", "read");
  EXPECT_TRUE(evaluate(req).is_permit());
  EXPECT_TRUE(evaluate(req).is_permit());
  EXPECT_EQ(backend_calls, 1);
}

TEST(CachingEvaluatorTest, IndeterminateAndNaNotCached) {
  common::ManualClock clock;
  DecisionCache cache(clock, 1000);
  int backend_calls = 0;
  CachingEvaluator evaluate(cache, [&](const core::RequestContext&) {
    ++backend_calls;
    return backend_calls < 3 ? Decision::not_applicable() : Decision::permit();
  });

  const auto req = core::RequestContext::make("alice", "doc", "read");
  EXPECT_TRUE(evaluate(req).is_not_applicable());
  EXPECT_TRUE(evaluate(req).is_not_applicable());
  EXPECT_EQ(backend_calls, 2);  // NA decisions were not cached
  EXPECT_TRUE(evaluate(req).is_permit());
  EXPECT_TRUE(evaluate(req).is_permit());
  EXPECT_EQ(backend_calls, 3);  // permit was cached
}

TEST(CachingEvaluatorTest, PolicyChangeInvalidationRestoresFreshness) {
  common::ManualClock clock;
  DecisionCache cache(clock, 10000);
  Decision current = Decision::permit();
  CachingEvaluator evaluate(cache,
                            [&](const core::RequestContext&) { return current; });

  const auto req = core::RequestContext::make("alice", "doc", "read");
  EXPECT_TRUE(evaluate(req).is_permit());
  current = Decision::deny();  // policy changed behind the cache's back
  EXPECT_TRUE(evaluate(req).is_permit());  // stale!
  cache.invalidate_all();                  // change notification arrives
  EXPECT_TRUE(evaluate(req).is_deny());
}

TEST(StalenessProbeTest, CountsFalsePermitsAndDenies) {
  StalenessProbe probe;
  probe.observe(Decision::permit(), Decision::permit());
  probe.observe(Decision::permit(), Decision::deny());  // false permit
  probe.observe(Decision::deny(), Decision::permit());  // false deny
  probe.observe(Decision::deny(), Decision::not_applicable());
  EXPECT_EQ(probe.agreements, 2u);
  EXPECT_EQ(probe.false_permits, 1u);
  EXPECT_EQ(probe.false_denies, 1u);
}

}  // namespace
}  // namespace mdac::cache
