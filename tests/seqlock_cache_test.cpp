// cache::SeqlockDecisionCache (the two-level design's shared L2), the
// inline decision codec it stores, cache::WorkerL1Cache (the per-worker
// L1), and the DecisionCache facade's two-level mode. The torn-read
// stress test at the bottom is the seqlock protocol's consistency pin —
// run it under TSan (build-tsan) to check the atomic choreography, and
// under the plain tree to hammer actual tearing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "cache/decision_cache.hpp"
#include "cache/seqlock_cache.hpp"
#include "common/clock.hpp"

namespace mdac::cache {
namespace {

core::Decision stamped_permit(const std::string& tag) {
  core::Decision d = core::Decision::permit();
  core::ObligationInstance stamp;
  stamp.id = "stamp";
  stamp.assignments.emplace_back("version-tag", core::AttributeValue(tag));
  d.obligations.push_back(std::move(stamp));
  return d;
}

RequestKey key_of(std::uint64_t n) {
  // Distinct, well-spread synthetic fingerprints.
  return RequestKey{n * 0x9E3779B97F4A7C15ULL + 1, n ^ 0xA5A5A5A5A5A5A5A5ULL};
}

// ---------------------------------------------------------------------
// Decision codec
// ---------------------------------------------------------------------

TEST(DecisionCodecTest, RoundTripsEveryValueTypeAndDecisionShape) {
  core::Decision d;
  d.type = core::DecisionType::kDeny;
  d.extent = core::IndeterminateExtent::kNone;
  d.status = core::Status::okay();
  core::ObligationInstance o;
  o.id = "audit";
  o.assignments.emplace_back("who", core::AttributeValue("alice"));
  o.assignments.emplace_back("flag", core::AttributeValue(true));
  o.assignments.emplace_back("count", core::AttributeValue(std::int64_t{-42}));
  o.assignments.emplace_back("score", core::AttributeValue(2.5));
  o.assignments.emplace_back("at", core::AttributeValue(core::TimeValue{123456789}));
  d.obligations.push_back(o);
  core::ObligationInstance a;
  a.id = "advise";
  d.advice.push_back(a);

  std::uint8_t buf[SeqlockDecisionCache::kMaxEncodedBytes];
  const auto len = encode_decision(d, buf, sizeof buf);
  ASSERT_TRUE(len.has_value());
  core::Decision back;
  ASSERT_TRUE(decode_decision(buf, *len, back));
  EXPECT_EQ(back, d);

  // Indeterminate with extent + status message round-trips too.
  core::Decision ind = core::Decision::indeterminate(
      core::IndeterminateExtent::kDP, core::Status::missing_attribute("role"));
  const auto ind_len = encode_decision(ind, buf, sizeof buf);
  ASSERT_TRUE(ind_len.has_value());
  ASSERT_TRUE(decode_decision(buf, *ind_len, back));
  EXPECT_EQ(back, ind);
}

TEST(DecisionCodecTest, RejectsDecisionsThatDoNotFit) {
  core::Decision d = core::Decision::indeterminate(
      core::IndeterminateExtent::kDP,
      core::Status::processing_error(std::string(200, 'x')));
  std::uint8_t buf[SeqlockDecisionCache::kMaxEncodedBytes];
  EXPECT_FALSE(encode_decision(d, buf, sizeof buf).has_value());
  // With enough room the same decision encodes fine.
  std::uint8_t big[512];
  EXPECT_TRUE(encode_decision(d, big, sizeof big).has_value());
}

TEST(DecisionCodecTest, RejectsTruncatedAndOverlongInput) {
  std::uint8_t buf[SeqlockDecisionCache::kMaxEncodedBytes];
  const auto len = encode_decision(stamped_permit("v1"), buf, sizeof buf);
  ASSERT_TRUE(len.has_value());
  core::Decision out;
  EXPECT_TRUE(decode_decision(buf, *len, out));
  EXPECT_FALSE(decode_decision(buf, *len - 1, out));  // truncated
  EXPECT_FALSE(decode_decision(buf, 0, out));
  // Trailing garbage is not ours either (decode must consume exactly).
  std::uint8_t padded[SeqlockDecisionCache::kMaxEncodedBytes + 1];
  std::copy(buf, buf + *len, padded);
  padded[*len] = 0xFF;
  EXPECT_FALSE(decode_decision(padded, *len + 1, out));
}

// ---------------------------------------------------------------------
// SeqlockDecisionCache
// ---------------------------------------------------------------------

TEST(SeqlockDecisionCacheTest, LookupIsVersionScoped) {
  SeqlockDecisionCache cache(256);
  const RequestKey k = key_of(1);
  ASSERT_TRUE(cache.insert(k, /*version=*/1, stamped_permit("v1")));
  ASSERT_TRUE(cache.insert(k, /*version=*/2, stamped_permit("v2")));

  core::Decision out;
  std::uint64_t retries = 0;
  ASSERT_TRUE(cache.lookup(k, 1, out, &retries));
  EXPECT_EQ(out, stamped_permit("v1"));
  ASSERT_TRUE(cache.lookup(k, 2, out, &retries));
  EXPECT_EQ(out, stamped_permit("v2"));
  EXPECT_FALSE(cache.lookup(k, 3, out, &retries));
  EXPECT_FALSE(cache.lookup(key_of(2), 1, out, &retries));
  EXPECT_EQ(retries, 0u);  // no concurrent writers: reads never retry
  EXPECT_EQ(cache.size(), 2u);

  // Same (key, version) refreshes in place.
  ASSERT_TRUE(cache.insert(k, 2, stamped_permit("v2b")));
  ASSERT_TRUE(cache.lookup(k, 2, out));
  EXPECT_EQ(out, stamped_permit("v2b"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().updates, 1u);
}

TEST(SeqlockDecisionCacheTest, OversizeDecisionsAreNotCached) {
  SeqlockDecisionCache cache(64);
  core::Decision big = core::Decision::indeterminate(
      core::IndeterminateExtent::kDP,
      core::Status::processing_error(std::string(200, 'x')));
  EXPECT_FALSE(cache.insert(key_of(1), 1, big));
  core::Decision out;
  EXPECT_FALSE(cache.lookup(key_of(1), 1, out));
  EXPECT_EQ(cache.stats().rejected_oversize, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SeqlockDecisionCacheTest, EvictOlderThanReclaimsExactCounts) {
  SeqlockDecisionCache cache(1024);
  constexpr std::uint64_t kPerVersion = 50;
  for (std::uint64_t i = 0; i < kPerVersion; ++i) {
    ASSERT_TRUE(cache.insert(key_of(i), 1, stamped_permit("v1")));
    ASSERT_TRUE(cache.insert(key_of(i), 2, stamped_permit("v2")));
  }
  ASSERT_EQ(cache.size(), 2 * kPerVersion);

  EXPECT_EQ(cache.evict_older_than(2), kPerVersion);  // exactly the v1 set
  EXPECT_EQ(cache.size(), kPerVersion);
  EXPECT_EQ(cache.stats().version_evictions, kPerVersion);

  core::Decision out;
  EXPECT_FALSE(cache.lookup(key_of(0), 1, out));
  EXPECT_TRUE(cache.lookup(key_of(0), 2, out));

  EXPECT_EQ(cache.evict_older_than(2), 0u);  // idempotent
  EXPECT_EQ(cache.clear(), kPerVersion);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SeqlockDecisionCacheTest, BucketOverflowEvictsAVictimNotTheCache) {
  // Capacity 4 => a single 4-way bucket: the 5th distinct key must
  // displace exactly one victim.
  SeqlockDecisionCache cache(4);
  EXPECT_EQ(cache.slot_count(), 4u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(cache.insert(key_of(i), 1, stamped_permit("v1")));
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  core::Decision out;
  std::size_t live = 0;
  for (std::uint64_t i = 0; i < 5; ++i) {
    if (cache.lookup(key_of(i), 1, out)) ++live;
  }
  EXPECT_EQ(live, 4u);
}

// ---------------------------------------------------------------------
// WorkerL1Cache
// ---------------------------------------------------------------------

TEST(WorkerL1CacheTest, BoundedLruWithVersionFlush) {
  WorkerL1Cache l1(2);
  l1.insert(key_of(1), 1, stamped_permit("a"));
  l1.insert(key_of(2), 1, stamped_permit("b"));
  ASSERT_NE(l1.lookup(key_of(1), 1), nullptr);  // touches 1: LRU order 1,2
  l1.insert(key_of(3), 1, stamped_permit("c"));  // evicts 2 (least recent)
  EXPECT_EQ(l1.lookup(key_of(2), 1), nullptr);
  ASSERT_NE(l1.lookup(key_of(1), 1), nullptr);
  EXPECT_EQ(*l1.lookup(key_of(1), 1), stamped_permit("a"));
  EXPECT_EQ(l1.size(), 2u);
  EXPECT_EQ(l1.evictions(), 1u);

  // A different version never hits, and an insert under it flushes.
  EXPECT_EQ(l1.lookup(key_of(1), 2), nullptr);
  l1.insert(key_of(9), 2, stamped_permit("d"));
  EXPECT_EQ(l1.size(), 1u);
  EXPECT_EQ(l1.lookup(key_of(1), 1), nullptr);
  ASSERT_NE(l1.lookup(key_of(9), 2), nullptr);
  EXPECT_EQ(l1.flushes(), 1u);

  l1.flush();
  EXPECT_EQ(l1.size(), 0u);
  EXPECT_EQ(l1.lookup(key_of(9), 2), nullptr);
}

// ---------------------------------------------------------------------
// DecisionCache facade, two-level mode
// ---------------------------------------------------------------------

TEST(DecisionCacheTwoLevelTest, VersionedApiAndSweep) {
  DecisionCache cache(DecisionCache::TwoLevelConfig{.capacity = 256});
  EXPECT_EQ(cache.mode(), DecisionCache::Mode::kTwoLevel);
  EXPECT_EQ(cache.group_count(), 1u);
  EXPECT_EQ(cache.shard_count(), 0u);

  const RequestKey k = key_of(7);
  cache.insert(k, 3, stamped_permit("v3"));
  auto hit = cache.lookup(k, 3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, stamped_permit("v3"));
  EXPECT_FALSE(cache.lookup(k, 4).has_value());

  EXPECT_EQ(cache.evict_older_than(4), 1u);
  EXPECT_FALSE(cache.lookup(k, 3).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);  // sweep surfaces here
  EXPECT_EQ(cache.seqlock_stats().version_evictions, 1u);
}

TEST(DecisionCacheTwoLevelTest, GroupsAreIndependentPlacementDomains) {
  DecisionCache cache(DecisionCache::TwoLevelConfig{.capacity = 256, .groups = 2});
  EXPECT_EQ(cache.group_count(), 2u);
  const RequestKey k = key_of(11);
  cache.insert(k, 1, stamped_permit("v1"), /*group=*/0);
  EXPECT_TRUE(cache.lookup(k, 1, /*group=*/0).has_value());
  // The other group never saw the insert: duplication across groups is
  // the locality trade, not a shared index.
  EXPECT_FALSE(cache.lookup(k, 1, /*group=*/1).has_value());

  cache.insert(k, 1, stamped_permit("v1"), /*group=*/1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evict_older_than(2), 2u);  // sweeps cover every group
}

TEST(DecisionCacheMutexModeTest, VersionedApiSweepsThroughEvictIf) {
  common::WallClock clock;
  DecisionCache cache(clock, /*ttl=*/1'000'000, /*capacity=*/64);
  EXPECT_EQ(cache.mode(), DecisionCache::Mode::kMutexSharded);

  const RequestKey k = key_of(5);
  cache.insert(k, 1, stamped_permit("v1"));
  cache.insert(k, 2, stamped_permit("v2"));
  // The unversioned (PEP) API is version 0 of the same keyspace.
  cache.insert(k, stamped_permit("v0"));
  EXPECT_EQ(cache.size(), 3u);

  ASSERT_TRUE(cache.lookup(k, 1).has_value());
  EXPECT_EQ(cache.evict_older_than(2), 2u);  // versions 0 and 1
  EXPECT_FALSE(cache.lookup(k, 1).has_value());
  EXPECT_FALSE(cache.lookup(k).has_value());
  EXPECT_TRUE(cache.lookup(k, 2).has_value());
}

// ---------------------------------------------------------------------
// Seqlock torn-read stress
// ---------------------------------------------------------------------

// Readers and writers hammer a deliberately tiny slot table so the same
// slots are rewritten constantly. Every decision is self-validating: the
// stamp obligation's tag is derived from (key index, version), so ANY
// torn read that survives the sequence re-check — mixing bytes of two
// writes — produces either a decode failure or a stamp that contradicts
// the (key, version) the reader asked for. Under TSan this also proves
// the protocol is data-race-free.
TEST(SeqlockTornReadStressTest, ConcurrentRewritesNeverYieldMixedPayloads) {
  constexpr std::uint64_t kKeys = 8;
  constexpr std::uint64_t kVersions = 4;   // concurrent version churn
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
#ifdef NDEBUG
  constexpr int kReadsPerThread = 200'000;
#else
  constexpr int kReadsPerThread = 50'000;
#endif

  SeqlockDecisionCache cache(16);  // 4 buckets: heavy slot reuse
  const auto tag_for = [](std::uint64_t key_index, std::uint64_t version) {
    return "k" + std::to_string(key_index) + "-v" + std::to_string(version);
  };

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> total_retries{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::uint64_t n = static_cast<std::uint64_t>(w) * 7919;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t ki = n % kKeys;
        const std::uint64_t version = 1 + (n / kKeys) % kVersions;
        cache.insert(key_of(ki), version, stamped_permit(tag_for(ki, version)));
        ++n;
      }
    });
  }

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t local_hits = 0;
      std::uint64_t retries = 0;
      std::uint64_t n = static_cast<std::uint64_t>(r) * 104729;
      core::Decision out;
      for (int i = 0; i < kReadsPerThread; ++i, ++n) {
        const std::uint64_t ki = n % kKeys;
        const std::uint64_t version = 1 + n % kVersions;
        if (!cache.lookup(key_of(ki), version, out, &retries)) continue;
        ++local_hits;
        // The invariant: a hit for (key, version) is EXACTLY the
        // decision some writer stored for (key, version) — never a
        // blend of two writes, never another slot's payload.
        if (out != stamped_permit(tag_for(ki, version))) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      hits.fetch_add(local_hits, std::memory_order_relaxed);
      total_retries.fetch_add(retries, std::memory_order_relaxed);
    });
  }

  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(hits.load(), 0u);  // the stress actually exercised hits
}

}  // namespace
}  // namespace mdac::cache
