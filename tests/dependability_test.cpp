#include <gtest/gtest.h>

#include <memory>

#include "core/serialization.hpp"
#include "dependability/heartbeat.hpp"
#include "dependability/replicated_pdp.hpp"
#include "net/fault.hpp"
#include "runtime/engine.hpp"

namespace mdac::dependability {
namespace {

std::shared_ptr<core::Pdp> permit_reads_pdp() {
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "permit-reads";
  p.rule_combining = "first-applicable";
  core::Rule permit;
  permit.id = "permit-read";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kAction, core::attrs::kActionId,
            core::AttributeValue("read"));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  core::Rule deny;
  deny.id = "deny-rest";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  store->add(std::move(p));
  return std::make_shared<core::Pdp>(store);
}

std::shared_ptr<core::Pdp> deny_all_pdp() {
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "deny-all";
  core::Rule deny;
  deny.id = "deny";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  store->add(std::move(p));
  return std::make_shared<core::Pdp>(store);
}

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() : network_(sim_) {
    network_.set_default_link({10, 0, 0.0});
    for (int i = 0; i < 3; ++i) {
      replicas_.push_back(std::make_unique<PdpReplica>(
          network_, "pdp/" + std::to_string(i), permit_reads_pdp()));
    }
  }

  std::vector<std::string> replica_ids() const {
    return {"pdp/0", "pdp/1", "pdp/2"};
  }

  core::Decision evaluate(ReplicatedPdpClient& client, const std::string& action) {
    std::optional<core::Decision> got;
    client.evaluate(core::RequestContext::make("alice", "doc", action),
                    [&](core::Decision d) { got = d; });
    sim_.run();
    return got.value();
  }

  net::Simulator sim_;
  net::Network network_;
  std::vector<std::unique_ptr<PdpReplica>> replicas_;
};

// ---------------------------------------------------------------------
// Failover
// ---------------------------------------------------------------------

TEST_F(ReplicationTest, FailoverHealthyPrimary) {
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(client.stats().failovers, 0u);
  EXPECT_EQ(replicas_[0]->requests_served(), 1u);
  EXPECT_EQ(replicas_[1]->requests_served(), 0u);
}

TEST_F(ReplicationTest, FailoverSkipsDeadPrimary) {
  replicas_[0]->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(client.stats().failovers, 1u);
  EXPECT_EQ(replicas_[1]->requests_served(), 1u);
}

TEST_F(ReplicationTest, FailoverSurvivesTwoFailures) {
  replicas_[0]->set_up(false);
  replicas_[1]->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(client.stats().failovers, 2u);
}

TEST_F(ReplicationTest, AllReplicasDownIsIndeterminate) {
  for (auto& r : replicas_) r->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);
  const core::Decision d = evaluate(client, "read");
  EXPECT_TRUE(d.is_indeterminate());
  EXPECT_EQ(client.stats().exhausted, 1u);
}

TEST_F(ReplicationTest, RecoveryRestoresPrimary) {
  replicas_[0]->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);
  (void)evaluate(client, "read");
  replicas_[0]->set_up(true);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(replicas_[0]->requests_served(), 1u);
  EXPECT_EQ(client.stats().failovers, 1u);  // no new failover after recovery
}

TEST_F(ReplicationTest, NoReplicasConfigured) {
  ReplicatedPdpClient client(network_, "pep", {}, DispatchStrategy::kFailover);
  const core::Decision d = evaluate(client, "read");
  EXPECT_TRUE(d.is_indeterminate());
}

// ---------------------------------------------------------------------
// Quorum
// ---------------------------------------------------------------------

TEST_F(ReplicationTest, QuorumAgreesWhenHealthy) {
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kQuorum);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_TRUE(evaluate(client, "write").is_deny());
  // Every replica saw both requests.
  for (const auto& r : replicas_) {
    EXPECT_EQ(r->requests_served(), 2u);
  }
}

TEST_F(ReplicationTest, QuorumToleratesMinorityCrash) {
  replicas_[2]->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kQuorum);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
}

TEST_F(ReplicationTest, QuorumMasksCorruptMinority) {
  // Replace replica 2 with a corrupted one answering deny to everything.
  replicas_[2] = nullptr;  // unregister node id first
  PdpReplica corrupt(network_, "pdp/2", deny_all_pdp());
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kQuorum);
  // Majority (2 honest) says permit; the corrupt deny is outvoted.
  EXPECT_TRUE(evaluate(client, "read").is_permit());
}

TEST_F(ReplicationTest, QuorumFailsWithoutMajority) {
  replicas_[1]->set_up(false);
  replicas_[2]->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kQuorum);
  const core::Decision d = evaluate(client, "read");
  EXPECT_TRUE(d.is_indeterminate());
  EXPECT_EQ(client.stats().quorum_indecisive, 1u);
}

TEST_F(ReplicationTest, QuorumSplitVoteIsIndecisive) {
  // Two replicas permit reads, one denies everything, and one is down:
  // 4 replicas, majority = 3, votes 2/1 -> indeterminate.
  PdpReplica corrupt(network_, "pdp/3", deny_all_pdp());
  replicas_[2]->set_up(false);
  ReplicatedPdpClient client(network_, "pep",
                             {"pdp/0", "pdp/1", "pdp/2", "pdp/3"},
                             DispatchStrategy::kQuorum);
  const core::Decision d = evaluate(client, "read");
  EXPECT_TRUE(d.is_indeterminate());
}

// ---------------------------------------------------------------------
// Self-healing dispatch: breakers, sheds, backoff, fail-safe
// ---------------------------------------------------------------------

TEST_F(ReplicationTest, BreakerBoundsTrafficToADeadReplica) {
  replicas_[0]->set_up(false);
  // A cooldown longer than the test keeps the arithmetic sharp: no
  // half-open probe sneaks in between requests.
  DispatchConfig config;
  config.breaker.open_for = 60'000;
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover, config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(evaluate(client, "read").is_permit());
  }
  // The dead primary costs exactly failure_threshold timeouts (default
  // 3), then its breaker opens and the remaining requests skip straight
  // to a live replica — not one timeout per request.
  EXPECT_EQ(client.stats().tries_by_replica.at("pdp/0"), 3u);
  EXPECT_EQ(client.stats().breaker_opens, 1u);
  EXPECT_EQ(client.stats().breaker_skips, 7u);
  ASSERT_NE(client.breaker("pdp/0"), nullptr);
  EXPECT_EQ(client.breaker("pdp/0")->state(), CircuitBreaker::State::kOpen);
  // Every request still got a real decision from the replicas that work.
  EXPECT_EQ(client.stats().decided, 10u);
}

TEST_F(ReplicationTest, BreakerProbeRestoresARecoveredReplica) {
  replicas_[0]->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);
  for (int i = 0; i < 3; ++i) (void)evaluate(client, "read");
  ASSERT_EQ(client.breaker("pdp/0")->state(), CircuitBreaker::State::kOpen);

  // Recover the node and let the breaker's cooldown (default 1000ms)
  // elapse: the next request is admitted as the half-open probe, it
  // succeeds, and the primary is back in rotation.
  replicas_[0]->set_up(true);
  const std::size_t served_before = replicas_[0]->requests_served();
  sim_.schedule(1100, [] {});
  sim_.run();
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(client.breaker("pdp/0")->state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(replicas_[0]->requests_served(), served_before + 1);
  EXPECT_EQ(client.stats().breaker_probes, 1u);
}

TEST_F(ReplicationTest, ShedReplyFailsOverInsteadOfReachingThePep) {
  // A replica whose engine sheds under overload answers with the
  // distinct shed status. It is alive — the breaker must not trip — but
  // the dispatcher must try the next replica, never deliver the shed.
  net::RpcNode shedding(network_, "shed");
  shedding.set_request_handler([](const std::string& type, const std::string&,
                                  const std::string&) {
    if (type == "ping") return std::string("pong");
    return core::decision_to_string(core::Decision::indeterminate(
        core::IndeterminateExtent::kDP,
        core::Status::processing_error(runtime::kShedQueueFullMessage)));
  });

  ReplicatedPdpClient client(network_, "pep", {"shed", "pdp/1"},
                             DispatchStrategy::kFailover);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(client.stats().retryable_replies, 1u);
  EXPECT_EQ(client.stats().failovers, 1u);
  EXPECT_EQ(client.breaker("shed")->state(), CircuitBreaker::State::kClosed);
}

TEST_F(ReplicationTest, CorruptedRequestEchoFailsOver) {
  // Corrupt every request on the pep->pdp/0 link. The service answers
  // "bad request context" — proof of transit mangling, since the PEP
  // serialised the request itself — which is retryable, not enforceable.
  net::FaultPlan plan;
  net::LinkFault f;
  f.from = "pep";
  f.to = "pdp/0";
  f.corrupt_probability = 1.0;
  plan.add_link_fault(std::move(f));
  plan.arm(network_);

  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_GE(client.stats().retryable_replies, 1u);
  EXPECT_EQ(replicas_[1]->requests_served(), 1u);
  plan.disarm();
}

TEST_F(ReplicationTest, ExhaustionDeliversDistinctFailsafeWithStats) {
  for (auto& r : replicas_) r->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);
  const core::Decision d = evaluate(client, "read");
  ASSERT_TRUE(d.is_indeterminate());
  EXPECT_TRUE(is_dispatch_failsafe(d));
  EXPECT_NE(d.status.message.find("dispatch-exhausted"), std::string::npos);

  // Default budget: 3 waves over 3 replicas, capped at 8 tries total.
  const DispatchStats& s = client.stats();
  EXPECT_EQ(s.tries, 8u);
  EXPECT_EQ(s.backoffs, 2u);  // one backoff between each pair of waves
  EXPECT_EQ(s.retries, 5u);   // tries in waves 2 and 3
  EXPECT_EQ(s.exhausted, 1u);
  EXPECT_EQ(s.failsafe, 1u);
  EXPECT_EQ(s.decided, 0u);
}

TEST_F(ReplicationTest, BackoffJitterIsDeterministicPerSeed) {
  const auto run_once = [](std::uint64_t seed) {
    net::Simulator sim;
    net::Network network(sim);
    network.set_default_link({10, 0, 0.0});
    std::vector<std::unique_ptr<PdpReplica>> replicas;
    for (int i = 0; i < 3; ++i) {
      replicas.push_back(std::make_unique<PdpReplica>(
          network, "pdp/" + std::to_string(i), permit_reads_pdp()));
      replicas.back()->set_up(false);
    }
    DispatchConfig config;
    config.seed = seed;
    ReplicatedPdpClient client(network, "pep",
                               {"pdp/0", "pdp/1", "pdp/2"},
                               DispatchStrategy::kFailover, config);
    client.evaluate(core::RequestContext::make("alice", "doc", "read"),
                    [](core::Decision) {});
    sim.run();
    return sim.now();  // total elapsed time includes every jittered backoff
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));
}

TEST_F(ReplicationTest, DestroyingClientWithCallsInFlightIsSafe) {
  // The in-flight-callback lifetime bug: destroying the client while
  // RPC timeouts, backoff waves and the pending callback are still
  // queued on the simulator must turn them into no-ops — not
  // use-after-free (the ASan tree is what makes this test bite).
  for (auto& r : replicas_) r->set_up(false);
  bool callback_ran = false;
  {
    ReplicatedPdpClient client(network_, "pep", replica_ids(),
                               DispatchStrategy::kFailover);
    client.evaluate(core::RequestContext::make("alice", "doc", "read"),
                    [&](core::Decision) { callback_ran = true; });
    sim_.run_until(250);  // mid-dispatch: first try timed out, more queued
  }
  sim_.run();  // drain everything the dead client left behind
  EXPECT_FALSE(callback_ran);  // dropped, not invoked on freed state
}

TEST_F(ReplicationTest, DestroyingQuorumClientWithVotesInFlightIsSafe) {
  bool callback_ran = false;
  {
    ReplicatedPdpClient client(network_, "pep", replica_ids(),
                               DispatchStrategy::kQuorum);
    client.evaluate(core::RequestContext::make("alice", "doc", "read"),
                    [&](core::Decision) { callback_ran = true; });
    // Destroy before any response arrives (link latency is 10ms).
  }
  sim_.run();
  EXPECT_FALSE(callback_ran);
}

// ---------------------------------------------------------------------
// Degraded quorum
// ---------------------------------------------------------------------

TEST_F(ReplicationTest, QuorumDecidesTwoOfThreeWithOneReplicaDown) {
  // The degraded-quorum fix: pdp/2 is down and a health feed has shrunk
  // the preference order to the two live replicas. The electorate stays
  // the KNOWN set (3), majority 2 — and the two live replicas reach it.
  replicas_[2]->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kQuorum);
  client.set_replica_order({"pdp/0", "pdp/1"});
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_TRUE(evaluate(client, "write").is_deny());
  EXPECT_EQ(client.stats().quorum_indecisive, 0u);
}

TEST_F(ReplicationTest, QuorumElectorateIsConfigurable) {
  // An explicit electorate override: treat the deployment as 5-way even
  // though only 3 replicas are known here — majority becomes 3, which
  // three agreeing replicas still reach.
  DispatchConfig config;
  config.quorum_votes = 5;
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kQuorum, config);
  EXPECT_TRUE(evaluate(client, "read").is_permit());

  // ...but with one replica down only 2 of 3 votes arrive: short of the
  // configured majority, so the client degrades to the fail-safe.
  replicas_[2]->set_up(false);
  const core::Decision d = evaluate(client, "read");
  EXPECT_TRUE(is_dispatch_failsafe(d));
  EXPECT_NE(d.status.message.find("dispatch-no-quorum"), std::string::npos);
}

// ---------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------

TEST_F(ReplicationTest, HeartbeatValidatesConfiguration) {
  EXPECT_THROW(HeartbeatMonitor(network_, "m", {}, 100, 50),
               std::invalid_argument);  // nothing to monitor
  EXPECT_THROW(HeartbeatMonitor(network_, "m", replica_ids(), 0, 50),
               std::invalid_argument);  // non-positive period
  EXPECT_THROW(HeartbeatMonitor(network_, "m", replica_ids(), 100, 0),
               std::invalid_argument);  // non-positive probe timeout
  EXPECT_THROW(HeartbeatMonitor(network_, "m", replica_ids(), 100, 100),
               std::invalid_argument);  // probes would outlive the period
}

TEST_F(ReplicationTest, HeartbeatFiresChangeListenerOnTransitions) {
  HeartbeatMonitor monitor(network_, "monitor", replica_ids(), 100, 50);
  std::size_t fired = 0;
  monitor.set_change_listener([&] { ++fired; });
  monitor.start();

  sim_.run_until(250);
  const std::size_t after_startup = fired;
  EXPECT_GE(after_startup, 1u);  // unknown -> alive is a transition

  replicas_[0]->set_up(false);
  sim_.run_until(700);
  EXPECT_GT(fired, after_startup);  // alive -> dead observed
  EXPECT_GE(monitor.transitions_observed(), 4u);  // 3 up + 1 down
  monitor.stop();
}

TEST_F(ReplicationTest, HealthFeedReordersReplicasAutomatically) {
  HeartbeatMonitor monitor(network_, "monitor", replica_ids(), 100, 50);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);
  client.attach_health_feed(monitor);
  monitor.start();
  sim_.run_until(250);

  // Primary dies; the monitor notices and the client's order follows —
  // no manual set_replica_order anywhere.
  replicas_[0]->set_up(false);
  sim_.run_until(700);
  ASSERT_EQ(client.replicas().size(), 3u);
  EXPECT_EQ(client.replicas().back(), "pdp/0");
  EXPECT_GE(client.stats().health_reorders, 2u);

  monitor.stop();
  sim_.run();  // drain the probes already in flight
  // First try of the next request goes straight to a live replica.
  const std::size_t failovers_before = client.stats().failovers;
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(client.stats().failovers, failovers_before);
}



TEST_F(ReplicationTest, HeartbeatTracksLiveness) {
  HeartbeatMonitor monitor(network_, "monitor", replica_ids(), /*period=*/100,
                           /*probe_timeout=*/50);
  monitor.start();
  sim_.run_until(250);
  EXPECT_TRUE(monitor.is_alive("pdp/0"));
  EXPECT_TRUE(monitor.is_alive("pdp/1"));

  replicas_[0]->set_up(false);
  sim_.run_until(600);
  EXPECT_FALSE(monitor.is_alive("pdp/0"));
  EXPECT_TRUE(monitor.is_alive("pdp/1"));

  replicas_[0]->set_up(true);
  sim_.run_until(900);
  EXPECT_TRUE(monitor.is_alive("pdp/0"));
  monitor.stop();
}

TEST_F(ReplicationTest, PreferredOrderPutsLiveFirst) {
  HeartbeatMonitor monitor(network_, "monitor", replica_ids(), 100, 50);
  monitor.start();
  replicas_[0]->set_up(false);
  sim_.run_until(500);
  const auto order = monitor.preferred_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), "pdp/0");  // the dead one sinks to the end
  monitor.stop();

  // Wire into a failover client: first try goes to a live replica.
  ReplicatedPdpClient client(network_, "pep", order, DispatchStrategy::kFailover);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(client.stats().failovers, 0u);
}

TEST_F(ReplicationTest, SetReplicaOrderDropsUnknownIds) {
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);

  // Ids outside the construction-time replica set are dropped — a
  // confused health feed must not route authorization traffic to nodes
  // that were never part of this PDP service (previously they were
  // silently accepted).
  EXPECT_EQ(client.set_replica_order({"pdp/2", "pdp/evil", "pdp/0", "pdp/99"}),
            2u);
  EXPECT_EQ(client.replicas(), (std::vector<std::string>{"pdp/2", "pdp/0"}));

  // The validated order is live: the first request goes to pdp/2.
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(replicas_[2]->requests_served(), 1u);
  EXPECT_EQ(replicas_[0]->requests_served(), 0u);

  // Duplicates of known ids are dropped too (first occurrence wins), so
  // the installed list can never exceed the known-set size — one
  // evaluate() cannot be inflated into thousands of same-node retries.
  EXPECT_EQ(client.set_replica_order({"pdp/1", "pdp/1", "pdp/0", "pdp/1"}), 2u);
  EXPECT_EQ(client.replicas(), (std::vector<std::string>{"pdp/1", "pdp/0"}));

  // An all-unknown update leaves the client with no replicas (it degrades
  // exactly like an empty order: indeterminate, not misrouted).
  EXPECT_EQ(client.set_replica_order({"nope/1", "nope/2"}), 0u);
  EXPECT_TRUE(client.replicas().empty());
  EXPECT_TRUE(evaluate(client, "read").is_indeterminate());

  // Known ids can be reinstated afterwards — the known set is immutable.
  EXPECT_EQ(client.set_replica_order(replica_ids()), 3u);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
}

}  // namespace
}  // namespace mdac::dependability
