#include <gtest/gtest.h>

#include <memory>

#include "dependability/heartbeat.hpp"
#include "dependability/replicated_pdp.hpp"

namespace mdac::dependability {
namespace {

std::shared_ptr<core::Pdp> permit_reads_pdp() {
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "permit-reads";
  p.rule_combining = "first-applicable";
  core::Rule permit;
  permit.id = "permit-read";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kAction, core::attrs::kActionId,
            core::AttributeValue("read"));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  core::Rule deny;
  deny.id = "deny-rest";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  store->add(std::move(p));
  return std::make_shared<core::Pdp>(store);
}

std::shared_ptr<core::Pdp> deny_all_pdp() {
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "deny-all";
  core::Rule deny;
  deny.id = "deny";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  store->add(std::move(p));
  return std::make_shared<core::Pdp>(store);
}

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() : network_(sim_) {
    network_.set_default_link({10, 0, 0.0});
    for (int i = 0; i < 3; ++i) {
      replicas_.push_back(std::make_unique<PdpReplica>(
          network_, "pdp/" + std::to_string(i), permit_reads_pdp()));
    }
  }

  std::vector<std::string> replica_ids() const {
    return {"pdp/0", "pdp/1", "pdp/2"};
  }

  core::Decision evaluate(ReplicatedPdpClient& client, const std::string& action) {
    std::optional<core::Decision> got;
    client.evaluate(core::RequestContext::make("alice", "doc", action),
                    [&](core::Decision d) { got = d; });
    sim_.run();
    return got.value();
  }

  net::Simulator sim_;
  net::Network network_;
  std::vector<std::unique_ptr<PdpReplica>> replicas_;
};

// ---------------------------------------------------------------------
// Failover
// ---------------------------------------------------------------------

TEST_F(ReplicationTest, FailoverHealthyPrimary) {
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(client.stats().failovers, 0u);
  EXPECT_EQ(replicas_[0]->requests_served(), 1u);
  EXPECT_EQ(replicas_[1]->requests_served(), 0u);
}

TEST_F(ReplicationTest, FailoverSkipsDeadPrimary) {
  replicas_[0]->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(client.stats().failovers, 1u);
  EXPECT_EQ(replicas_[1]->requests_served(), 1u);
}

TEST_F(ReplicationTest, FailoverSurvivesTwoFailures) {
  replicas_[0]->set_up(false);
  replicas_[1]->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(client.stats().failovers, 2u);
}

TEST_F(ReplicationTest, AllReplicasDownIsIndeterminate) {
  for (auto& r : replicas_) r->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);
  const core::Decision d = evaluate(client, "read");
  EXPECT_TRUE(d.is_indeterminate());
  EXPECT_EQ(client.stats().exhausted, 1u);
}

TEST_F(ReplicationTest, RecoveryRestoresPrimary) {
  replicas_[0]->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);
  (void)evaluate(client, "read");
  replicas_[0]->set_up(true);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(replicas_[0]->requests_served(), 1u);
  EXPECT_EQ(client.stats().failovers, 1u);  // no new failover after recovery
}

TEST_F(ReplicationTest, NoReplicasConfigured) {
  ReplicatedPdpClient client(network_, "pep", {}, DispatchStrategy::kFailover);
  const core::Decision d = evaluate(client, "read");
  EXPECT_TRUE(d.is_indeterminate());
}

// ---------------------------------------------------------------------
// Quorum
// ---------------------------------------------------------------------

TEST_F(ReplicationTest, QuorumAgreesWhenHealthy) {
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kQuorum);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_TRUE(evaluate(client, "write").is_deny());
  // Every replica saw both requests.
  for (const auto& r : replicas_) {
    EXPECT_EQ(r->requests_served(), 2u);
  }
}

TEST_F(ReplicationTest, QuorumToleratesMinorityCrash) {
  replicas_[2]->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kQuorum);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
}

TEST_F(ReplicationTest, QuorumMasksCorruptMinority) {
  // Replace replica 2 with a corrupted one answering deny to everything.
  replicas_[2] = nullptr;  // unregister node id first
  PdpReplica corrupt(network_, "pdp/2", deny_all_pdp());
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kQuorum);
  // Majority (2 honest) says permit; the corrupt deny is outvoted.
  EXPECT_TRUE(evaluate(client, "read").is_permit());
}

TEST_F(ReplicationTest, QuorumFailsWithoutMajority) {
  replicas_[1]->set_up(false);
  replicas_[2]->set_up(false);
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kQuorum);
  const core::Decision d = evaluate(client, "read");
  EXPECT_TRUE(d.is_indeterminate());
  EXPECT_EQ(client.stats().quorum_indecisive, 1u);
}

TEST_F(ReplicationTest, QuorumSplitVoteIsIndecisive) {
  // Two replicas permit reads, one denies everything, and one is down:
  // 4 replicas, majority = 3, votes 2/1 -> indeterminate.
  PdpReplica corrupt(network_, "pdp/3", deny_all_pdp());
  replicas_[2]->set_up(false);
  ReplicatedPdpClient client(network_, "pep",
                             {"pdp/0", "pdp/1", "pdp/2", "pdp/3"},
                             DispatchStrategy::kQuorum);
  const core::Decision d = evaluate(client, "read");
  EXPECT_TRUE(d.is_indeterminate());
}

// ---------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------

TEST_F(ReplicationTest, HeartbeatTracksLiveness) {
  HeartbeatMonitor monitor(network_, "monitor", replica_ids(), /*period=*/100,
                           /*probe_timeout=*/50);
  monitor.start();
  sim_.run_until(250);
  EXPECT_TRUE(monitor.is_alive("pdp/0"));
  EXPECT_TRUE(monitor.is_alive("pdp/1"));

  replicas_[0]->set_up(false);
  sim_.run_until(600);
  EXPECT_FALSE(monitor.is_alive("pdp/0"));
  EXPECT_TRUE(monitor.is_alive("pdp/1"));

  replicas_[0]->set_up(true);
  sim_.run_until(900);
  EXPECT_TRUE(monitor.is_alive("pdp/0"));
  monitor.stop();
}

TEST_F(ReplicationTest, PreferredOrderPutsLiveFirst) {
  HeartbeatMonitor monitor(network_, "monitor", replica_ids(), 100, 50);
  monitor.start();
  replicas_[0]->set_up(false);
  sim_.run_until(500);
  const auto order = monitor.preferred_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), "pdp/0");  // the dead one sinks to the end
  monitor.stop();

  // Wire into a failover client: first try goes to a live replica.
  ReplicatedPdpClient client(network_, "pep", order, DispatchStrategy::kFailover);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(client.stats().failovers, 0u);
}

TEST_F(ReplicationTest, SetReplicaOrderDropsUnknownIds) {
  ReplicatedPdpClient client(network_, "pep", replica_ids(),
                             DispatchStrategy::kFailover);

  // Ids outside the construction-time replica set are dropped — a
  // confused health feed must not route authorization traffic to nodes
  // that were never part of this PDP service (previously they were
  // silently accepted).
  EXPECT_EQ(client.set_replica_order({"pdp/2", "pdp/evil", "pdp/0", "pdp/99"}),
            2u);
  EXPECT_EQ(client.replicas(), (std::vector<std::string>{"pdp/2", "pdp/0"}));

  // The validated order is live: the first request goes to pdp/2.
  EXPECT_TRUE(evaluate(client, "read").is_permit());
  EXPECT_EQ(replicas_[2]->requests_served(), 1u);
  EXPECT_EQ(replicas_[0]->requests_served(), 0u);

  // Duplicates of known ids are dropped too (first occurrence wins), so
  // the installed list can never exceed the known-set size — one
  // evaluate() cannot be inflated into thousands of same-node retries.
  EXPECT_EQ(client.set_replica_order({"pdp/1", "pdp/1", "pdp/0", "pdp/1"}), 2u);
  EXPECT_EQ(client.replicas(), (std::vector<std::string>{"pdp/1", "pdp/0"}));

  // An all-unknown update leaves the client with no replicas (it degrades
  // exactly like an empty order: indeterminate, not misrouted).
  EXPECT_EQ(client.set_replica_order({"nope/1", "nope/2"}), 0u);
  EXPECT_TRUE(client.replicas().empty());
  EXPECT_TRUE(evaluate(client, "read").is_indeterminate());

  // Known ids can be reinstated afterwards — the known set is immutable.
  EXPECT_EQ(client.set_replica_order(replica_ids()), 3u);
  EXPECT_TRUE(evaluate(client, "read").is_permit());
}

}  // namespace
}  // namespace mdac::dependability
