#include <gtest/gtest.h>

#include "core/functions.hpp"
#include "core/policy.hpp"
#include "pip/history.hpp"
#include "pip/providers.hpp"

namespace mdac::pip {
namespace {

using core::AttributeValue;
using core::Bag;
using core::Category;

TEST(DirectoryProviderTest, ResolvesSubjectAttributesByRequestSubjectId) {
  DirectoryProvider dir;
  dir.add_subject_attribute("alice", "role", AttributeValue("doctor"));
  dir.add_subject_attribute("alice", "role", AttributeValue("researcher"));
  dir.add_subject_attribute("bob", "role", AttributeValue("janitor"));

  const auto req = core::RequestContext::make("alice", "r", "read");
  const auto bag = dir.resolve(Category::kSubject, "role", req);
  ASSERT_TRUE(bag.has_value());
  EXPECT_EQ(bag->size(), 2u);
  EXPECT_TRUE(bag->contains(AttributeValue("doctor")));
}

TEST(DirectoryProviderTest, ResolvesResourceAttributes) {
  DirectoryProvider dir;
  dir.add_resource_attribute("doc-1", "owner", AttributeValue("carol"));
  const auto req = core::RequestContext::make("alice", "doc-1", "read");
  const auto bag = dir.resolve(Category::kResource, "owner", req);
  ASSERT_TRUE(bag.has_value());
  EXPECT_TRUE(bag->contains(AttributeValue("carol")));
}

TEST(DirectoryProviderTest, UnknownEntityOrAttributeIsNullopt) {
  DirectoryProvider dir;
  dir.add_subject_attribute("alice", "role", AttributeValue("doctor"));
  const auto unknown_subject = core::RequestContext::make("mallory", "r", "read");
  EXPECT_FALSE(dir.resolve(Category::kSubject, "role", unknown_subject).has_value());
  const auto known = core::RequestContext::make("alice", "r", "read");
  EXPECT_FALSE(dir.resolve(Category::kSubject, "shoe-size", known).has_value());
  EXPECT_FALSE(dir.resolve(Category::kEnvironment, "role", known).has_value());
}

TEST(DirectoryProviderTest, RequestWithoutSubjectIdIsNullopt) {
  DirectoryProvider dir;
  dir.add_subject_attribute("alice", "role", AttributeValue("doctor"));
  core::RequestContext req;  // no subject-id at all
  EXPECT_FALSE(dir.resolve(Category::kSubject, "role", req).has_value());
}

TEST(EnvironmentProviderTest, SuppliesCurrentTimeFromClock) {
  common::ManualClock clock(12345);
  EnvironmentProvider env(clock);
  core::RequestContext req;
  const auto bag = env.resolve(Category::kEnvironment, core::attrs::kCurrentTime, req);
  ASSERT_TRUE(bag.has_value());
  EXPECT_EQ(bag->at(0).as_time().millis, 12345);
  clock.advance(10);
  EXPECT_EQ(env.resolve(Category::kEnvironment, core::attrs::kCurrentTime, req)
                ->at(0)
                .as_time()
                .millis,
            12355);
}

TEST(EnvironmentProviderTest, SuppliesRegisteredFacts) {
  common::ManualClock clock;
  EnvironmentProvider env(clock);
  env.set_fact("deployment-zone", AttributeValue("eu-west"));
  core::RequestContext req;
  const auto bag = env.resolve(Category::kEnvironment, "deployment-zone", req);
  ASSERT_TRUE(bag.has_value());
  EXPECT_TRUE(bag->contains(AttributeValue("eu-west")));
  EXPECT_FALSE(env.resolve(Category::kEnvironment, "unknown", req).has_value());
  EXPECT_FALSE(env.resolve(Category::kSubject, "deployment-zone", req).has_value());
}

TEST(CompositeResolverTest, FirstProviderWins) {
  DirectoryProvider a;
  a.add_subject_attribute("alice", "role", AttributeValue("from-a"));
  DirectoryProvider b;
  b.add_subject_attribute("alice", "role", AttributeValue("from-b"));

  CompositeResolver composite;
  composite.add(&a);
  composite.add(&b);

  const auto req = core::RequestContext::make("alice", "r", "read");
  const auto bag = composite.resolve(Category::kSubject, "role", req);
  ASSERT_TRUE(bag.has_value());
  EXPECT_TRUE(bag->contains(AttributeValue("from-a")));
}

TEST(CompositeResolverTest, FallsThroughToLaterProviders) {
  DirectoryProvider a;  // knows nothing
  common::ManualClock clock(7);
  EnvironmentProvider env(clock);
  CompositeResolver composite;
  composite.add(&a);
  composite.add(&env);

  core::RequestContext req;
  EXPECT_TRUE(composite.resolve(Category::kEnvironment, core::attrs::kCurrentTime, req)
                  .has_value());
  EXPECT_FALSE(composite.resolve(Category::kSubject, "role", req).has_value());
}

// ---------------------------------------------------------------------
// History
// ---------------------------------------------------------------------

TEST(AccessHistoryTest, RecordsAndProjects) {
  AccessHistory history;
  history.record("alice", "doc-1", "read", 10);
  history.record("alice", "doc-2", "read", 20);
  history.record("alice", "doc-1", "write", 30);
  history.record("bob", "doc-3", "read", 40);

  EXPECT_EQ(history.size(), 4u);
  EXPECT_EQ(history.for_subject("alice").size(), 3u);
  EXPECT_EQ(history.resources_touched("alice"),
            (std::vector<std::string>{"doc-1", "doc-2"}));
  EXPECT_TRUE(history.for_subject("mallory").empty());
}

TEST(HistoryProviderTest, ExposesAccessedResourcesAttribute) {
  AccessHistory history;
  history.record("alice", "doc-1", "read", 1);
  history.record("alice", "doc-2", "read", 2);
  HistoryProvider provider(history);

  const auto req = core::RequestContext::make("alice", "doc-3", "read");
  const auto bag =
      provider.resolve(Category::kSubject, HistoryProvider::kAccessedResources, req);
  ASSERT_TRUE(bag.has_value());
  EXPECT_TRUE(bag->contains(AttributeValue("doc-1")));
  EXPECT_TRUE(bag->contains(AttributeValue("doc-2")));

  const auto count =
      provider.resolve(Category::kSubject, HistoryProvider::kAccessCount, req);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(count->at(0).as_integer(), 2);
}

TEST(HistoryProviderTest, UsableInPolicyCondition) {
  // A policy denying access to more than 1 distinct resource — a simple
  // history-based constraint evaluated through the normal PDP path.
  AccessHistory history;
  history.record("greedy", "doc-1", "read", 1);
  history.record("greedy", "doc-2", "read", 2);
  HistoryProvider provider(history);

  core::Policy p;
  p.policy_id = "rate-limit";
  core::Rule r;
  r.id = "deny-over-quota";
  r.effect = core::Effect::kDeny;
  r.condition = core::make_apply(
      "integer-greater-than",
      core::make_apply("bag-size",
                       core::designator(Category::kSubject,
                                        HistoryProvider::kAccessedResources,
                                        core::DataType::kString)),
      core::lit(std::int64_t{1}));
  p.rules.push_back(std::move(r));

  const auto decide = [&](const std::string& subject) {
    const auto req = core::RequestContext::make(subject, "doc-9", "read");
    core::EvaluationContext ctx(req, core::FunctionRegistry::standard(), &provider);
    return p.evaluate(ctx);
  };
  EXPECT_TRUE(decide("greedy").is_deny());
  EXPECT_TRUE(decide("modest").is_not_applicable());
}

}  // namespace
}  // namespace mdac::pip
