// Chaos suite: seeded fault plans against the self-healing dispatcher.
//
// The invariant these tests pin (ISSUE 6): under ANY seeded
// net::FaultPlan, every decision the dispatcher delivers is either
// byte-identical to what a fault-free local PDP (the oracle) returns for
// the same request, or an explicit fail-safe indeterminate
// (is_dispatch_failsafe). Faults may cost latency and retries — they may
// never change an answer, deliver a shed, or fabricate a permit.
//
// Everything is deterministic: the simulator, the fault plan and the
// dispatcher's backoff jitter all draw from seeded Rngs, so a failing
// (plan, strategy, seed) triple replays exactly under a debugger.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/serialization.hpp"
#include "dependability/heartbeat.hpp"
#include "dependability/replicated_pdp.hpp"
#include "net/fault.hpp"

namespace mdac::dependability {
namespace {

constexpr common::TimePoint kHorizon = 2'500;

std::shared_ptr<core::PolicyStore> permit_reads_store() {
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "permit-reads";
  p.rule_combining = "first-applicable";
  core::Rule permit;
  permit.id = "permit-read";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kAction, core::attrs::kActionId,
            core::AttributeValue("read"));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  core::Rule deny;
  deny.id = "deny-rest";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  store->add(std::move(p));
  return store;
}

core::RequestContext nth_request(int i) {
  return core::RequestContext::make("user/" + std::to_string(i % 5),
                                    "doc/" + std::to_string(i % 7),
                                    i % 2 == 0 ? "read" : "write");
}

struct ChaosRun {
  std::vector<std::string> delivered;  // serialized decisions, request order
  std::size_t failsafes = 0;
  std::size_t oracle_matches = 0;
  DispatchStats stats;
  common::TimePoint finished_at = 0;
};

/// Drives `requests` paced evaluations through a ReplicatedPdpClient
/// under the named fault plan and checks the oracle invariant for every
/// delivered decision.
ChaosRun run_chaos(const std::string& plan_name, DispatchStrategy strategy,
                   std::uint64_t seed, int requests = 30,
                   common::Duration pace = 50) {
  net::Simulator sim(seed);
  net::Network network(sim);
  network.set_default_link({10, 0, 0.0});

  const std::vector<std::string> ids = {"pdp/0", "pdp/1", "pdp/2"};
  std::vector<std::unique_ptr<PdpReplica>> replicas;
  for (const std::string& id : ids) {
    replicas.push_back(std::make_unique<PdpReplica>(
        network, id, std::make_shared<core::Pdp>(permit_reads_store())));
  }
  core::Pdp oracle(permit_reads_store());  // fault-free reference

  auto plan = net::make_named_fault_plan(plan_name, seed, ids, "pep", kHorizon);
  plan->arm(network);

  DispatchConfig config;
  config.seed = seed;
  ReplicatedPdpClient client(network, "pep", ids, strategy, config);

  ChaosRun run;
  run.delivered.resize(static_cast<std::size_t>(requests));
  std::vector<int> callbacks(static_cast<std::size_t>(requests), 0);
  for (int i = 0; i < requests; ++i) {
    sim.schedule(i * pace, [&, i] {
      client.evaluate(nth_request(i), [&, i](core::Decision d) {
        ++callbacks[static_cast<std::size_t>(i)];
        run.delivered[static_cast<std::size_t>(i)] = core::decision_to_string(d);
        if (is_dispatch_failsafe(d)) ++run.failsafes;
      });
    });
  }
  sim.run();

  for (int i = 0; i < requests; ++i) {
    // Exactly one delivery per request — duplication and reordering in
    // the fabric must never double-invoke or starve a callback.
    EXPECT_EQ(callbacks[static_cast<std::size_t>(i)], 1)
        << plan_name << " seed " << seed << " request " << i;
    const std::string oracle_xml =
        core::decision_to_string(oracle.evaluate(nth_request(i)));
    const std::string& got = run.delivered[static_cast<std::size_t>(i)];
    if (got == oracle_xml) {
      ++run.oracle_matches;
    } else {
      // The ONLY permissible divergence: an explicit fail-safe.
      const auto decision = core::decision_from_string(got);
      EXPECT_TRUE(is_dispatch_failsafe(decision))
          << plan_name << " seed " << seed << " request " << i
          << " delivered a non-oracle, non-failsafe decision:\n  got    " << got
          << "\n  oracle " << oracle_xml;
    }
  }

  // Bounded retry traffic: the budget caps tries per request.
  run.stats = client.stats();
  EXPECT_LE(run.stats.tries,
            static_cast<std::size_t>(requests) * config.max_attempts);
  EXPECT_EQ(run.stats.requests, static_cast<std::size_t>(requests));
  EXPECT_EQ(run.stats.decided + run.stats.failsafe,
            static_cast<std::size_t>(requests));
  run.finished_at = sim.now();
  return run;
}

class ChaosSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {};

TEST_P(ChaosSweep, FailoverDeliversOracleOrFailsafe) {
  const auto& [plan, seed] = GetParam();
  const ChaosRun run = run_chaos(plan, DispatchStrategy::kFailover, seed);
  // The invariant itself is asserted inside run_chaos; additionally the
  // fabric must stay *useful*: most requests get the oracle's answer.
  EXPECT_GE(run.oracle_matches, run.delivered.size() * 3 / 4) << plan;
}

TEST_P(ChaosSweep, QuorumDeliversOracleOrFailsafe) {
  const auto& [plan, seed] = GetParam();
  const ChaosRun run = run_chaos(plan, DispatchStrategy::kQuorum, seed);
  EXPECT_GE(run.oracle_matches, run.delivered.size() / 2) << plan;
}

INSTANTIATE_TEST_SUITE_P(
    AllPlansAllSeeds, ChaosSweep,
    ::testing::Combine(::testing::Values("flaky-links", "primary-flap",
                                         "slow-partition", "dup-corrupt",
                                         "chaos-mix"),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(ChaosDeterminism, SamePlanSeedWorkloadReplaysByteIdentically) {
  const ChaosRun a = run_chaos("chaos-mix", DispatchStrategy::kFailover, 7);
  const ChaosRun b = run_chaos("chaos-mix", DispatchStrategy::kFailover, 7);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.stats.tries, b.stats.tries);
  EXPECT_EQ(a.stats.failsafe, b.stats.failsafe);
  EXPECT_EQ(a.finished_at, b.finished_at);

  // A different seed genuinely reshuffles the faults (drops, jitter,
  // backoff timing) — if it did not, the sweep above would be testing
  // one scenario three times. (finished_at alone is not a discriminator:
  // the run's last event is the plan's final scripted recovery, which is
  // seed-independent.)
  const ChaosRun c = run_chaos("chaos-mix", DispatchStrategy::kFailover, 8);
  const auto fingerprint = [](const ChaosRun& r) {
    return std::tuple{r.delivered, r.stats.tries, r.stats.retryable_replies,
                      r.stats.undecodable_replies, r.stats.breaker_skips};
  };
  EXPECT_NE(fingerprint(a), fingerprint(c));
}

// ---------------------------------------------------------------------
// The acceptance scenario: one of three replicas crash-flapping.
// ---------------------------------------------------------------------

TEST(ChaosAvailability, FlappingPrimaryAvailabilityAtLeast99Percent) {
  const int kRequests = 200;
  const common::Duration kPace = 25;
  const common::TimePoint horizon = kRequests * kPace;

  net::Simulator sim(5);
  net::Network network(sim);
  network.set_default_link({10, 0, 0.0});
  const std::vector<std::string> ids = {"pdp/0", "pdp/1", "pdp/2"};
  std::vector<std::unique_ptr<PdpReplica>> replicas;
  for (const std::string& id : ids) {
    replicas.push_back(std::make_unique<PdpReplica>(
        network, id, std::make_shared<core::Pdp>(permit_reads_store())));
  }
  auto plan = net::make_named_fault_plan("primary-flap", 5, ids, "pep", horizon);
  plan->arm(network);

  ReplicatedPdpClient client(network, "pep", ids, DispatchStrategy::kFailover);
  std::size_t delivered_definitive = 0;
  for (int i = 0; i < kRequests; ++i) {
    sim.schedule(i * kPace, [&, i] {
      client.evaluate(nth_request(i), [&](core::Decision d) {
        if (d.is_permit() || d.is_deny()) ++delivered_definitive;
      });
    });
  }
  sim.run();

  // Availability: definitive decisions over requests, with a third of
  // the fleet flapping the whole run.
  const double availability =
      static_cast<double>(delivered_definitive) / kRequests;
  EXPECT_GE(availability, 0.99);

  // The breaker bounds retry traffic to the flapping node: of the tries
  // aimed at pdp/0, only a bounded burst per outage (plus half-open
  // probes) actually failed — NOT one timeout per request issued while
  // it was down, which would be on the order of half the workload.
  const DispatchStats& s = client.stats();
  const std::size_t primary_tries = s.tries_by_replica.at("pdp/0");
  const std::size_t primary_successes = replicas[0]->requests_served();
  ASSERT_GE(primary_tries, primary_successes);
  EXPECT_LE(primary_tries - primary_successes, 50u);
  EXPECT_GE(s.breaker_skips, 40u);   // the breaker did the suppressing
  EXPECT_GE(s.breaker_opens, 1u);
  EXPECT_EQ(s.exhausted, 0u);        // two healthy replicas: never give up
}

TEST(ChaosAvailability, HealthFeedKeepsFirstTriesOnLiveReplicas) {
  const int kRequests = 120;
  const common::Duration kPace = 25;
  const common::TimePoint horizon = kRequests * kPace;

  net::Simulator sim(9);
  net::Network network(sim);
  network.set_default_link({10, 0, 0.0});
  const std::vector<std::string> ids = {"pdp/0", "pdp/1", "pdp/2"};
  std::vector<std::unique_ptr<PdpReplica>> replicas;
  for (const std::string& id : ids) {
    replicas.push_back(std::make_unique<PdpReplica>(
        network, id, std::make_shared<core::Pdp>(permit_reads_store())));
  }
  auto plan = net::make_named_fault_plan("primary-flap", 9, ids, "pep", horizon);
  plan->arm(network);

  HeartbeatMonitor monitor(network, "monitor", ids, /*period=*/100,
                           /*probe_timeout=*/50);
  ReplicatedPdpClient client(network, "pep", ids, DispatchStrategy::kFailover);
  client.attach_health_feed(monitor);
  monitor.start();

  std::size_t delivered_definitive = 0;
  for (int i = 0; i < kRequests; ++i) {
    sim.schedule(i * kPace, [&, i] {
      client.evaluate(nth_request(i), [&](core::Decision d) {
        if (d.is_permit() || d.is_deny()) ++delivered_definitive;
      });
    });
  }
  sim.run_until(horizon + 1'000);
  monitor.stop();
  sim.run();  // drain in-flight probes and dispatches

  EXPECT_GE(static_cast<double>(delivered_definitive) / kRequests, 0.99);
  // The monitor observed the flapping and re-sorted the preference list
  // automatically — nobody called set_replica_order.
  EXPECT_GE(client.stats().health_reorders, 2u);
}

}  // namespace
}  // namespace mdac::dependability
