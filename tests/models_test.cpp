#include <gtest/gtest.h>

#include "models/chinese_wall.hpp"
#include "models/dac.hpp"
#include "models/mac.hpp"

namespace mdac::models {
namespace {

// ---------------------------------------------------------------------
// DAC
// ---------------------------------------------------------------------

TEST(DacTest, OwnerHoldsAllRights) {
  DacMatrix dac;
  ASSERT_TRUE(dac.create_object("file", "owner"));
  EXPECT_TRUE(dac.check("owner", "file", Right::kRead));
  EXPECT_TRUE(dac.check("owner", "file", Right::kWrite));
  EXPECT_TRUE(dac.has_grant_option("owner", "file", Right::kExecute));
  EXPECT_FALSE(dac.check("stranger", "file", Right::kRead));
}

TEST(DacTest, DuplicateObjectRejected) {
  DacMatrix dac;
  ASSERT_TRUE(dac.create_object("file", "a"));
  EXPECT_FALSE(dac.create_object("file", "b"));
  ASSERT_NE(dac.owner_of("file"), nullptr);
  EXPECT_EQ(*dac.owner_of("file"), "a");
  EXPECT_EQ(dac.owner_of("ghost"), nullptr);
}

TEST(DacTest, GrantRequiresGrantOption) {
  DacMatrix dac;
  ASSERT_TRUE(dac.create_object("file", "owner"));
  // Plain grant (no grant option) lets bob read but not re-grant.
  ASSERT_TRUE(dac.grant("owner", "bob", "file", Right::kRead, false));
  EXPECT_TRUE(dac.check("bob", "file", Right::kRead));
  EXPECT_FALSE(dac.grant("bob", "carol", "file", Right::kRead, false));
  EXPECT_FALSE(dac.check("carol", "file", Right::kRead));
}

TEST(DacTest, GrantOptionEnablesDelegationChain) {
  DacMatrix dac;
  ASSERT_TRUE(dac.create_object("file", "owner"));
  ASSERT_TRUE(dac.grant("owner", "bob", "file", Right::kRead, true));
  ASSERT_TRUE(dac.grant("bob", "carol", "file", Right::kRead, true));
  ASSERT_TRUE(dac.grant("carol", "dave", "file", Right::kRead, false));
  EXPECT_TRUE(dac.check("dave", "file", Right::kRead));
}

TEST(DacTest, RightsAreIndependent) {
  DacMatrix dac;
  ASSERT_TRUE(dac.create_object("file", "owner"));
  ASSERT_TRUE(dac.grant("owner", "bob", "file", Right::kRead, false));
  EXPECT_FALSE(dac.check("bob", "file", Right::kWrite));
  EXPECT_FALSE(dac.grant("bob", "carol", "file", Right::kWrite, false));
}

TEST(DacTest, CascadingRevocation) {
  // owner -> bob -> carol -> dave; revoking bob collapses the whole chain.
  DacMatrix dac;
  ASSERT_TRUE(dac.create_object("file", "owner"));
  ASSERT_TRUE(dac.grant("owner", "bob", "file", Right::kRead, true));
  ASSERT_TRUE(dac.grant("bob", "carol", "file", Right::kRead, true));
  ASSERT_TRUE(dac.grant("carol", "dave", "file", Right::kRead, false));

  ASSERT_TRUE(dac.revoke("owner", "bob", "file", Right::kRead));
  EXPECT_FALSE(dac.check("bob", "file", Right::kRead));
  EXPECT_FALSE(dac.check("carol", "file", Right::kRead));
  EXPECT_FALSE(dac.check("dave", "file", Right::kRead));
  EXPECT_EQ(dac.grant_count(), 0u);
}

TEST(DacTest, IndependentGrantSurvivesCascade) {
  // carol holds read from bob AND directly from the owner; revoking the
  // bob path must not take away the owner-granted right.
  DacMatrix dac;
  ASSERT_TRUE(dac.create_object("file", "owner"));
  ASSERT_TRUE(dac.grant("owner", "bob", "file", Right::kRead, true));
  ASSERT_TRUE(dac.grant("bob", "carol", "file", Right::kRead, false));
  ASSERT_TRUE(dac.grant("owner", "carol", "file", Right::kRead, false));

  ASSERT_TRUE(dac.revoke("owner", "bob", "file", Right::kRead));
  EXPECT_FALSE(dac.check("bob", "file", Right::kRead));
  EXPECT_TRUE(dac.check("carol", "file", Right::kRead));
}

TEST(DacTest, NonOwnerCanOnlyRevokeOwnGrants) {
  DacMatrix dac;
  ASSERT_TRUE(dac.create_object("file", "owner"));
  ASSERT_TRUE(dac.grant("owner", "bob", "file", Right::kRead, true));
  ASSERT_TRUE(dac.grant("owner", "carol", "file", Right::kRead, false));
  // bob didn't grant carol's right, so bob cannot revoke it.
  EXPECT_FALSE(dac.revoke("bob", "carol", "file", Right::kRead));
  // The owner can revoke anything.
  EXPECT_TRUE(dac.revoke("owner", "carol", "file", Right::kRead));
}

// ---------------------------------------------------------------------
// MAC / Bell–LaPadula
// ---------------------------------------------------------------------

TEST(MacTest, DominatesIsLatticeOrder) {
  const Label secret_ab{2, {"a", "b"}};
  const Label secret_a{2, {"a"}};
  const Label public_none{0, {}};
  EXPECT_TRUE(dominates(secret_ab, secret_a));
  EXPECT_FALSE(dominates(secret_a, secret_ab));
  EXPECT_TRUE(dominates(secret_a, public_none));
  EXPECT_TRUE(dominates(secret_ab, secret_ab));  // reflexive
  // Incomparable labels: neither dominates.
  const Label secret_b{2, {"b"}};
  EXPECT_FALSE(dominates(secret_a, secret_b));
  EXPECT_FALSE(dominates(secret_b, secret_a));
}

TEST(MacTest, NoReadUp) {
  BlpModel blp;
  blp.set_clearance("analyst", {1, {"crypto"}});
  blp.set_classification("top-secret-doc", {3, {"crypto"}});
  blp.set_classification("public-doc", {0, {}});
  EXPECT_FALSE(blp.can_read("analyst", "top-secret-doc"));
  EXPECT_TRUE(blp.can_read("analyst", "public-doc"));
}

TEST(MacTest, NoWriteDown) {
  BlpModel blp;
  blp.set_clearance("analyst", {2, {"crypto"}});
  blp.set_classification("public-doc", {0, {}});
  blp.set_classification("archive", {3, {"crypto"}});
  EXPECT_FALSE(blp.can_write("analyst", "public-doc"));  // would leak down
  EXPECT_TRUE(blp.can_write("analyst", "archive"));      // write up is fine
}

TEST(MacTest, CompartmentsRestrictAccess) {
  BlpModel blp;
  blp.set_clearance("analyst", {3, {"nuclear"}});
  blp.set_classification("crypto-doc", {1, {"crypto"}});
  // High level but wrong compartment: no read.
  EXPECT_FALSE(blp.can_read("analyst", "crypto-doc"));
}

TEST(MacTest, UnknownEntitiesFailSafe) {
  BlpModel blp;
  blp.set_classification("doc", {0, {}});
  EXPECT_FALSE(blp.can_read("ghost", "doc"));
  blp.set_clearance("subject", {3, {}});
  EXPECT_FALSE(blp.can_read("subject", "ghost-doc"));
  EXPECT_FALSE(blp.can_write("ghost", "ghost-doc"));
}

TEST(MacTest, ReadEqualLevelAllowed) {
  BlpModel blp;
  blp.set_clearance("s", {2, {"a"}});
  blp.set_classification("o", {2, {"a"}});
  EXPECT_TRUE(blp.can_read("s", "o"));
  EXPECT_TRUE(blp.can_write("s", "o"));  // equal labels satisfy both
}

// ---------------------------------------------------------------------
// Chinese Wall
// ---------------------------------------------------------------------

class ChineseWallTest : public ::testing::Test {
 protected:
  ChineseWallTest() {
    wall_.add_company("bank-a", "banking");
    wall_.add_company("bank-b", "banking");
    wall_.add_company("oil-x", "energy");
    wall_.assign_object("bank-a:ledger", "bank-a");
    wall_.assign_object("bank-b:ledger", "bank-b");
    wall_.assign_object("oil-x:survey", "oil-x");
  }
  ChineseWall wall_;
};

TEST_F(ChineseWallTest, CleanSlateAccessesAnything) {
  EXPECT_TRUE(wall_.can_access("analyst", "bank-a:ledger"));
  EXPECT_TRUE(wall_.can_access("analyst", "bank-b:ledger"));
}

TEST_F(ChineseWallTest, AccessRaisesWallWithinConflictClass) {
  wall_.record_access("analyst", "bank-a:ledger");
  EXPECT_TRUE(wall_.can_access("analyst", "bank-a:ledger"));   // same side
  EXPECT_FALSE(wall_.can_access("analyst", "bank-b:ledger"));  // across wall
  EXPECT_TRUE(wall_.can_access("analyst", "oil-x:survey"));    // other class
}

TEST_F(ChineseWallTest, WallsArePerSubject) {
  wall_.record_access("analyst", "bank-a:ledger");
  EXPECT_TRUE(wall_.can_access("other-analyst", "bank-b:ledger"));
}

TEST_F(ChineseWallTest, UnassignedObjectsAreOutsideWalls) {
  wall_.record_access("analyst", "bank-a:ledger");
  EXPECT_TRUE(wall_.can_access("analyst", "public-report"));
}

TEST_F(ChineseWallTest, AccessibleCompaniesShrinkAfterCommitment) {
  EXPECT_EQ(wall_.accessible_companies("analyst", "banking").size(), 2u);
  wall_.record_access("analyst", "bank-b:ledger");
  const auto remaining = wall_.accessible_companies("analyst", "banking");
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_TRUE(remaining.count("bank-b"));
  // Energy class untouched.
  EXPECT_EQ(wall_.accessible_companies("analyst", "energy").size(), 1u);
}

TEST_F(ChineseWallTest, FirstCommitmentWinsEvenAfterRepeatAccesses) {
  wall_.record_access("analyst", "bank-a:ledger");
  wall_.record_access("analyst", "bank-a:ledger");
  EXPECT_FALSE(wall_.can_access("analyst", "bank-b:ledger"));
}

}  // namespace
}  // namespace mdac::models
