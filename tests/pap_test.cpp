#include <gtest/gtest.h>

#include <memory>

#include "core/compiled.hpp"
#include "core/expression.hpp"
#include "core/pdp.hpp"
#include "core/serialization.hpp"
#include "pap/admin_guard.hpp"
#include "pap/repository.hpp"
#include "pap/syndication.hpp"

namespace mdac::pap {
namespace {

std::string simple_policy_doc(const std::string& id, const std::string& resource,
                              core::Effect effect = core::Effect::kPermit) {
  core::Policy p;
  p.policy_id = id;
  p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                        core::AttributeValue(resource));
  core::Rule r;
  r.id = id + "-rule";
  r.effect = effect;
  p.rules.push_back(std::move(r));
  return core::node_to_string(p);
}

// ---------------------------------------------------------------------
// Repository lifecycle
// ---------------------------------------------------------------------

TEST(RepositoryTest, SubmitIssueWithdrawLifecycle) {
  common::ManualClock clock(100);
  PolicyRepository repo(clock);

  ASSERT_TRUE(repo.submit(simple_policy_doc("p1", "doc"), "alice"));
  EXPECT_EQ(repo.latest("p1")->status, Lifecycle::kDraft);
  EXPECT_EQ(repo.issued("p1"), nullptr);

  ASSERT_TRUE(repo.issue("p1", "bob"));
  EXPECT_EQ(repo.issued("p1")->version, 1);

  ASSERT_TRUE(repo.withdraw("p1", "carol"));
  EXPECT_EQ(repo.issued("p1"), nullptr);
  EXPECT_EQ(repo.latest("p1")->status, Lifecycle::kWithdrawn);
}

TEST(RepositoryTest, RejectsMalformedDocuments) {
  common::ManualClock clock;
  PolicyRepository repo(clock);
  EXPECT_FALSE(repo.submit("not xml at all", "alice"));
  EXPECT_FALSE(repo.submit("<NotAPolicy/>", "alice"));
  EXPECT_EQ(repo.policy_ids().size(), 0u);
}

TEST(RepositoryTest, NewVersionSupersedesIssued) {
  common::ManualClock clock;
  PolicyRepository repo(clock);
  ASSERT_TRUE(repo.submit(simple_policy_doc("p1", "doc"), "alice"));
  ASSERT_TRUE(repo.issue("p1", "alice"));
  // v2 as draft, then issued: v1 must be auto-withdrawn.
  ASSERT_TRUE(repo.submit(simple_policy_doc("p1", "doc2"), "alice"));
  EXPECT_EQ(repo.latest("p1")->version, 2);
  EXPECT_EQ(repo.issued("p1")->version, 1);  // still v1 until issue
  ASSERT_TRUE(repo.issue("p1", "alice"));
  EXPECT_EQ(repo.issued("p1")->version, 2);
  EXPECT_EQ(repo.all_issued().size(), 1u);
}

TEST(RepositoryTest, CannotIssueNonDraftOrUnknown) {
  common::ManualClock clock;
  PolicyRepository repo(clock);
  EXPECT_FALSE(repo.issue("ghost", "alice"));
  ASSERT_TRUE(repo.submit(simple_policy_doc("p1", "doc"), "alice"));
  ASSERT_TRUE(repo.issue("p1", "alice"));
  EXPECT_FALSE(repo.issue("p1", "alice"));  // latest is issued, not draft
  EXPECT_FALSE(repo.withdraw("ghost", "alice"));
}

TEST(RepositoryTest, BoundedAuditRingKeepsSequenceContinuity) {
  common::ManualClock clock(100);
  PapConfig config;
  config.audit_capacity = 3;
  PolicyRepository repo(clock, config);

  // 3 policies x (submit + issue) = 6 entries through a 3-entry ring.
  for (int i = 1; i <= 3; ++i) {
    const std::string id = "p" + std::to_string(i);
    ASSERT_TRUE(repo.submit(simple_policy_doc(id, "doc"), "alice"));
    ASSERT_TRUE(repo.issue(id, "bob"));
  }

  const auto& log = repo.audit_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(repo.dropped_audit_entries(), 3u);

  // The retained suffix stays gap-free and monotone across the wrap: the
  // oldest surviving entry's sequence equals (total recorded − retained
  // + 1), so the drop is detectable rather than silent.
  EXPECT_EQ(log.front().sequence, 4u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_EQ(log[i].sequence, log[i - 1].sequence + 1);
  }
  EXPECT_EQ(log.back().sequence, 6u);

  // An unbounded repository (the default) never drops and numbers from 1.
  PolicyRepository unbounded(clock);
  ASSERT_TRUE(unbounded.submit(simple_policy_doc("q1", "doc"), "alice"));
  ASSERT_TRUE(unbounded.issue("q1", "bob"));
  EXPECT_EQ(unbounded.dropped_audit_entries(), 0u);
  EXPECT_EQ(unbounded.audit_log().front().sequence, 1u);
  EXPECT_EQ(unbounded.audit_log().back().sequence, 2u);
}

TEST(RepositoryTest, AuditLogRecordsEverything) {
  common::ManualClock clock(1000);
  PolicyRepository repo(clock);
  ASSERT_TRUE(repo.submit(simple_policy_doc("p1", "doc"), "alice"));
  clock.advance(10);
  ASSERT_TRUE(repo.issue("p1", "bob"));
  clock.advance(10);
  ASSERT_TRUE(repo.withdraw("p1", "carol"));

  const auto& log = repo.audit_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].operation, "submit");
  EXPECT_EQ(log[0].actor, "alice");
  EXPECT_EQ(log[0].at, 1000);
  EXPECT_EQ(log[1].operation, "issue");
  EXPECT_EQ(log[2].operation, "withdraw");
  EXPECT_EQ(log[2].at, 1020);
  // Content hashes are stable for identical documents.
  EXPECT_EQ(log[0].content_hash, log[1].content_hash);
  EXPECT_FALSE(log[0].content_hash.empty());
}

// ---------------------------------------------------------------------
// Issue-time lint and the lint gate
// ---------------------------------------------------------------------

TEST(RepositoryTest, IssueLintReportsCrossPolicyConflict) {
  common::ManualClock clock;
  PolicyRepository repo(clock);  // default config: lint on, gate off
  ASSERT_TRUE(repo.submit(simple_policy_doc("allow-doc", "doc"), "alice"));
  ASSERT_TRUE(repo.issue("allow-doc", "alice"));

  ASSERT_TRUE(repo.submit(
      simple_policy_doc("deny-doc", "doc", core::Effect::kDeny), "alice"));
  ASSERT_TRUE(repo.issue("deny-doc", "alice"));  // gate off: issued anyway
  ASSERT_NE(repo.issued("deny-doc"), nullptr);

  const auto report = repo.lint_report();
  ASSERT_NE(report, nullptr);
  EXPECT_GT(report->error_count, 0u);
  bool conflict_found = false;
  for (const analysis::Finding& f : report->findings) {
    if (f.code == "modality-conflict") conflict_found = true;
  }
  EXPECT_TRUE(conflict_found);

  // The lint outcome is audited against the candidate.
  bool lint_audited = false;
  for (const AuditEntry& entry : repo.audit_log()) {
    if (entry.operation == "lint" && entry.policy_id == "deny-doc") {
      lint_audited = true;
    }
  }
  EXPECT_TRUE(lint_audited);
}

TEST(RepositoryTest, LintGateRefusesConflictingIssueAndAuditsIt) {
  common::ManualClock clock;
  PapConfig config;
  config.lint_gate = true;
  PolicyRepository repo(clock, config);
  ASSERT_TRUE(repo.submit(simple_policy_doc("allow-doc", "doc"), "alice"));
  ASSERT_TRUE(repo.issue("allow-doc", "alice"));

  ASSERT_TRUE(repo.submit(
      simple_policy_doc("deny-doc", "doc", core::Effect::kDeny), "alice"));
  const std::uint64_t revision_before = repo.revision();
  const RepoOutcome outcome = repo.issue("deny-doc", "mallory");
  EXPECT_FALSE(outcome);
  EXPECT_NE(outcome.reason.find("lint gate"), std::string::npos);

  // Refusal leaves the policy state unchanged — still a draft, never
  // issued — and the only repository change is the refusal landing on
  // the audit trail (record_audit advances revision()).
  EXPECT_EQ(repo.issued("deny-doc"), nullptr);
  EXPECT_EQ(repo.latest("deny-doc")->status, Lifecycle::kDraft);
  EXPECT_EQ(repo.revision(), revision_before + 1);
  bool refusal_audited = false;
  for (const AuditEntry& entry : repo.audit_log()) {
    if (entry.operation == "lint-refused" && entry.policy_id == "deny-doc" &&
        entry.actor == "mallory") {
      refusal_audited = true;
    }
  }
  EXPECT_TRUE(refusal_audited);

  // A non-conflicting policy still issues through the gate.
  ASSERT_TRUE(repo.submit(simple_policy_doc("other", "other-doc"), "alice"));
  EXPECT_TRUE(repo.issue("other", "alice"));
}

TEST(RepositoryTest, CleanIssueLeavesAuditLogQuiet) {
  // A lint that finds nothing about the candidate must not add audit
  // noise — AuditLogRecordsEverything's 3-entry contract stays true.
  common::ManualClock clock;
  PolicyRepository repo(clock);
  ASSERT_TRUE(repo.submit(simple_policy_doc("p1", "doc"), "alice"));
  ASSERT_TRUE(repo.issue("p1", "alice"));
  EXPECT_EQ(repo.audit_log().size(), 2u);  // submit + issue, no "lint"
  const auto report = repo.lint_report();
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->ok());
}

TEST(RepositoryTest, LintOnIssueCanBeDisabled) {
  common::ManualClock clock;
  PapConfig config;
  config.lint_on_issue = false;
  PolicyRepository repo(clock, config);
  ASSERT_TRUE(repo.submit(simple_policy_doc("allow-doc", "doc"), "alice"));
  ASSERT_TRUE(repo.issue("allow-doc", "alice"));
  EXPECT_EQ(repo.lint_report(), nullptr);
}

TEST(RepositoryTest, LoadIntoPdpStore) {
  common::ManualClock clock;
  PolicyRepository repo(clock);
  ASSERT_TRUE(repo.submit(simple_policy_doc("p1", "doc"), "a"));
  ASSERT_TRUE(repo.submit(simple_policy_doc("p2", "doc2"), "a"));
  ASSERT_TRUE(repo.issue("p1", "a"));
  // p2 stays a draft: it must not reach the PDP.

  core::PolicyStore store;
  EXPECT_EQ(repo.load_into(&store), 1u);
  EXPECT_NE(store.find("p1"), nullptr);
  EXPECT_EQ(store.find("p2"), nullptr);
}

// ---------------------------------------------------------------------
// Compile-on-issue (compiled policy programs, ISSUE 3)
// ---------------------------------------------------------------------

TEST(RepositoryTest, CompileOnIssueSharedAcrossPdpReplicas) {
  common::ManualClock clock;
  PolicyRepository repo(clock);
  ASSERT_TRUE(repo.submit(simple_policy_doc("p1", "doc"), "a"));
  EXPECT_EQ(repo.compiled("p1"), nullptr);  // drafts are not compiled

  ASSERT_TRUE(repo.issue("p1", "a"));
  const auto artifact = repo.compiled("p1");
  ASSERT_NE(artifact, nullptr);
  EXPECT_EQ(artifact->id(), "p1");
  EXPECT_EQ(artifact->stats().rules, 1u);

  // Every PDP replica loading this repository executes the *same*
  // compiled program — the artifact is shared, not re-derived per store.
  core::PolicyStore store_a;
  core::PolicyStore store_b;
  ASSERT_EQ(repo.load_into(&store_a), 1u);
  ASSERT_EQ(repo.load_into(&store_b), 1u);
  EXPECT_EQ(store_a.compiled("p1").get(), artifact.get());
  EXPECT_EQ(store_b.compiled("p1").get(), artifact.get());

  // Recompile-on-update: issuing a new version replaces the artifact...
  ASSERT_TRUE(repo.submit(simple_policy_doc("p1", "doc2"), "a"));
  ASSERT_TRUE(repo.issue("p1", "a"));
  const auto recompiled = repo.compiled("p1");
  ASSERT_NE(recompiled, nullptr);
  EXPECT_NE(recompiled.get(), artifact.get());

  // ...and withdrawing removes it.
  ASSERT_TRUE(repo.withdraw("p1", "a"));
  EXPECT_EQ(repo.compiled("p1"), nullptr);
}

// ---------------------------------------------------------------------
// PolicySet tree compilation + reference recompilation (ISSUE 5)
// ---------------------------------------------------------------------

std::string referencing_set_doc(const std::string& set_id,
                                const std::vector<std::string>& refs) {
  core::PolicySet set;
  set.policy_set_id = set_id;
  set.policy_combining = "deny-overrides";
  for (const std::string& r : refs) set.add_reference(r);
  return core::node_to_string(set);
}

TEST(RepositoryTest, PolicySetCompileOnIssueSharedAcrossPdpReplicas) {
  common::ManualClock clock;
  PolicyRepository repo(clock);
  ASSERT_TRUE(repo.submit(simple_policy_doc("leaf", "doc"), "a"));
  ASSERT_TRUE(repo.issue("leaf", "a"));
  ASSERT_TRUE(repo.submit(referencing_set_doc("outer", {"leaf"}), "a"));
  ASSERT_TRUE(repo.issue("outer", "a"));

  const auto artifact = repo.compiled("outer");
  ASSERT_NE(artifact, nullptr);
  EXPECT_EQ(artifact->stats().policy_sets, 1u);
  EXPECT_EQ(artifact->stats().references, 1u);

  core::PolicyStore store_a;
  core::PolicyStore store_b;
  ASSERT_EQ(repo.load_into(&store_a), 2u);
  ASSERT_EQ(repo.load_into(&store_b), 2u);
  EXPECT_EQ(store_a.compiled("outer").get(), artifact.get());
  EXPECT_EQ(store_b.compiled("outer").get(), artifact.get());
}

TEST(RepositoryTest, ReferencedPolicyUpdateRecompilesDependentSets) {
  common::ManualClock clock;
  PolicyRepository repo(clock);
  ASSERT_TRUE(repo.submit(simple_policy_doc("leaf", "doc", core::Effect::kPermit), "a"));
  ASSERT_TRUE(repo.issue("leaf", "a"));
  ASSERT_TRUE(repo.submit(referencing_set_doc("outer", {"leaf"}), "a"));
  ASSERT_TRUE(repo.issue("outer", "a"));
  // Transitive dependent: a set referencing the referencing set.
  ASSERT_TRUE(repo.submit(referencing_set_doc("outer2", {"outer"}), "a"));
  ASSERT_TRUE(repo.issue("outer2", "a"));

  const auto outer_v1 = repo.compiled("outer");
  const auto outer2_v1 = repo.compiled("outer2");
  ASSERT_NE(outer_v1, nullptr);
  ASSERT_NE(outer2_v1, nullptr);

  {
    auto store = std::make_shared<core::PolicyStore>();
    ASSERT_EQ(repo.load_into(store.get()), 3u);
    core::Pdp pdp(store);
    EXPECT_TRUE(pdp.evaluate(core::RequestContext::make("u", "doc", "read")).is_permit());
  }

  // Re-issue the referenced policy as a deny: both dependent artifacts
  // must be invalidated/recompiled within the same issue() call — i.e.
  // before any snapshot built from this repository publishes.
  ASSERT_TRUE(repo.submit(simple_policy_doc("leaf", "doc", core::Effect::kDeny), "a"));
  ASSERT_TRUE(repo.issue("leaf", "a"));
  const auto outer_v2 = repo.compiled("outer");
  const auto outer2_v2 = repo.compiled("outer2");
  ASSERT_NE(outer_v2, nullptr);
  ASSERT_NE(outer2_v2, nullptr);
  EXPECT_NE(outer_v2.get(), outer_v1.get());
  EXPECT_NE(outer2_v2.get(), outer2_v1.get());

  // The recompilations ride the audited administrative path.
  std::size_t recompiles = 0;
  for (const AuditEntry& e : repo.audit_log()) {
    if (e.operation == "recompile") ++recompiles;
  }
  EXPECT_GE(recompiles, 2u);

  // A replica loading the repository now denies through the set tree.
  auto store = std::make_shared<core::PolicyStore>();
  ASSERT_EQ(repo.load_into(store.get()), 3u);
  core::Pdp pdp(store);
  EXPECT_TRUE(pdp.evaluate(core::RequestContext::make("u", "doc", "read")).is_deny());
}

TEST(RepositoryTest, WithdrawnReferenceRecompilesWithDiagnostics) {
  common::ManualClock clock;
  PolicyRepository repo(clock);
  ASSERT_TRUE(repo.submit(simple_policy_doc("leaf", "doc"), "a"));
  ASSERT_TRUE(repo.issue("leaf", "a"));
  ASSERT_TRUE(repo.submit(referencing_set_doc("outer", {"leaf"}), "a"));
  ASSERT_TRUE(repo.issue("outer", "a"));
  const auto before = repo.compiled("outer");
  ASSERT_NE(before, nullptr);
  EXPECT_TRUE(before->diagnostics().empty());

  ASSERT_TRUE(repo.withdraw("leaf", "a"));
  const auto after = repo.compiled("outer");
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after.get(), before.get());
  // The fresh artifact's diagnostics record the dangling reference.
  bool saw = false;
  for (const std::string& d : after->diagnostics()) {
    if (d.find("leaf") != std::string::npos) saw = true;
  }
  EXPECT_TRUE(saw);

  // The withdrawn permit is unreachable: only the set loads, and its
  // reference no longer resolves.
  auto store = std::make_shared<core::PolicyStore>();
  ASSERT_EQ(repo.load_into(store.get()), 1u);
  core::Pdp pdp(store);
  const core::Decision d = pdp.evaluate(core::RequestContext::make("u", "doc", "read"));
  EXPECT_FALSE(d.is_permit());
  EXPECT_EQ(d.type, core::DecisionType::kIndeterminate);
}

TEST(RepositoryTest, StaleSetArtifactCannotServeWithdrawnPolicy) {
  // The structural backstop behind the recompilation machinery: even an
  // artifact compiled while the referenced policy existed resolves its
  // references through the *live* store per request, so a stale set
  // program can never serve a withdrawn rule.
  core::PolicySet outer;
  outer.policy_set_id = "outer";
  outer.policy_combining = "deny-overrides";
  outer.add_reference("leaf");

  core::Policy leaf;
  leaf.policy_id = "leaf";
  core::Rule r;
  r.id = "permit-all";
  r.effect = core::Effect::kPermit;
  leaf.rules.push_back(std::move(r));

  const auto stale = core::CompiledPolicyTree::compile(outer);
  const core::RequestContext req = core::RequestContext::make("u", "doc", "read");

  {
    auto with_leaf = std::make_shared<core::PolicyStore>();
    with_leaf->add(leaf.clone());
    with_leaf->add(outer.clone_node(), stale);
    core::Pdp pdp(with_leaf);
    EXPECT_TRUE(pdp.evaluate(req).is_permit());
  }
  {
    auto without_leaf = std::make_shared<core::PolicyStore>();
    without_leaf->add(outer.clone_node(), stale);
    core::Pdp pdp(without_leaf);
    const core::Decision d = pdp.evaluate(req);
    EXPECT_FALSE(d.is_permit());
    EXPECT_EQ(d.type, core::DecisionType::kIndeterminate);
  }
}

// ---------------------------------------------------------------------
// Issue-time vocabulary auto-extraction (ISSUE 3 satellite)
// ---------------------------------------------------------------------

TEST(RepositoryTest, IssueAutoExtractsAttributeVocabulary) {
  common::ManualClock clock;
  PolicyRepository repo(clock);
  repo.set_vocabulary_domain("hospital");

  // A policy referencing attributes in its target, a rule target, a
  // condition and an obligation assignment.
  core::Policy p;
  p.policy_id = "records";
  p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                        core::AttributeValue("patient-records"));
  core::Rule r;
  r.id = "records-rule";
  r.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kSubject, "ward-role", core::AttributeValue("doctor"));
  r.target = std::move(t);
  r.condition = core::make_apply(
      "string-equal",
      core::designator(core::Category::kEnvironment, "shift-phase",
                       core::DataType::kString),
      core::lit("on-call"));
  core::ObligationExpr ob;
  ob.id = "log-access";
  ob.fulfill_on = core::Effect::kPermit;
  ob.assignments.push_back(core::AttributeAssignmentExpr{
      "who", core::designator(core::Category::kSubject, "staff-id",
                              core::DataType::kString)});
  r.obligations.push_back(std::move(ob));
  p.rules.push_back(std::move(r));

  ASSERT_TRUE(repo.submit(core::node_to_string(p), "admin"));
  EXPECT_EQ(repo.attribute_allowlist("hospital"), nullptr);  // not yet issued

  ASSERT_TRUE(repo.issue("records", "admin"));

  // The harvested names — target, rule target, condition designator and
  // obligation designator — are now the domain's allowlist, without any
  // register_attribute_vocabulary call.
  const auto* allowlist = repo.attribute_allowlist("hospital");
  ASSERT_NE(allowlist, nullptr);
  for (const char* name :
       {"resource-id", "ward-role", "shift-phase", "staff-id"}) {
    EXPECT_TRUE(repo.attribute_allowed("hospital", name)) << name;
    EXPECT_TRUE(allowlist->count(name)) << name;
  }
  // The request envelope is always registered alongside the harvested
  // names: a PEP gating on this allowlist must keep accepting the
  // subject/resource/action triple every request carries, even when no
  // policy target happens to mention those attributes.
  for (const char* name : {"subject-id", "action-id", "subject-domain",
                           "resource-domain"}) {
    EXPECT_TRUE(repo.attribute_allowed("hospital", name)) << name;
  }
  EXPECT_FALSE(repo.attribute_allowed("hospital", "never-mentioned"));

  // The registration went through the audited trusted path.
  bool saw_registration = false;
  for (const AuditEntry& e : repo.audit_log()) {
    if (e.operation == "register-attributes" && e.policy_id == "hospital") {
      saw_registration = true;
    }
  }
  EXPECT_TRUE(saw_registration);

  // Issuing another policy appends to the allowlist.
  ASSERT_TRUE(repo.submit(simple_policy_doc("p2", "lab-results"), "admin"));
  ASSERT_TRUE(repo.issue("p2", "admin"));
  EXPECT_TRUE(repo.attribute_allowed("hospital", "resource-id"));
  EXPECT_TRUE(repo.attribute_allowed("hospital", "ward-role"));
}

TEST(RepositoryTest, IssueHarvestsPolicySetVocabularyRecursively) {
  common::ManualClock clock;
  PolicyRepository repo(clock);
  repo.set_vocabulary_domain("lab");

  // A PolicySet whose own target and nested policy reference attributes:
  // a closed allowlist must cover them, or the PEP gate would reject the
  // only requests the set can match.
  core::PolicySet set;
  set.policy_set_id = "lab-set";
  set.target_spec.require(core::Category::kResource, "lab-wing",
                          core::AttributeValue("north"));
  core::Policy inner;
  inner.policy_id = "lab-inner";
  inner.target_spec.require(core::Category::kSubject, "badge-level",
                            core::AttributeValue("2"));
  core::Rule r;
  r.id = "lab-rule";
  r.effect = core::Effect::kPermit;
  inner.rules.push_back(std::move(r));
  set.add(std::move(inner));

  ASSERT_TRUE(repo.submit(core::node_to_string(set), "admin"));
  ASSERT_TRUE(repo.issue("lab-set", "admin"));

  for (const char* name : {"lab-wing", "badge-level", "subject-id", "action-id"}) {
    EXPECT_TRUE(repo.attribute_allowed("lab", name)) << name;
  }
  // Policy sets compile on issue too (ISSUE 5): the whole tree — set
  // target, nested policy, rules — is one artifact.
  const auto artifact = repo.compiled("lab-set");
  ASSERT_NE(artifact, nullptr);
  EXPECT_EQ(artifact->stats().policy_sets, 1u);
  EXPECT_EQ(artifact->stats().compiled_policies, 1u);
  EXPECT_EQ(artifact->stats().rules, 1u);
}

TEST(RepositoryTest, NoVocabularyDomainMeansNoAutoRegistration) {
  common::ManualClock clock;
  PolicyRepository repo(clock);
  ASSERT_TRUE(repo.submit(simple_policy_doc("p1", "doc"), "a"));
  ASSERT_TRUE(repo.issue("p1", "a"));
  EXPECT_EQ(repo.attribute_allowlist(""), nullptr);
  for (const AuditEntry& e : repo.audit_log()) {
    EXPECT_NE(e.operation, "register-attributes");
  }
}

// ---------------------------------------------------------------------
// Admin guard (policies protecting policies)
// ---------------------------------------------------------------------

class AdminGuardTest : public ::testing::Test {
 protected:
  AdminGuardTest() : repo_(clock_) {
    // Admin policy: only "chief-admin" may administer policies; issue is
    // further restricted to the compliance officer for vault policies.
    auto store = std::make_shared<core::PolicyStore>();
    core::Policy admin;
    admin.policy_id = "admin-policy";
    admin.rule_combining = "first-applicable";

    core::Rule chief;
    chief.id = "chief-can-anything";
    chief.effect = core::Effect::kPermit;
    core::Target chief_target;
    chief_target.require(core::Category::kSubject, core::attrs::kSubjectId,
                         core::AttributeValue("chief-admin"));
    chief.target = std::move(chief_target);
    admin.rules.push_back(std::move(chief));

    core::Rule compliance;
    compliance.id = "compliance-can-issue";
    compliance.effect = core::Effect::kPermit;
    core::Target t;
    t.require(core::Category::kSubject, core::attrs::kSubjectId,
              core::AttributeValue("compliance-officer"));
    t.require(core::Category::kAction, core::attrs::kActionId,
              core::AttributeValue("issue"));
    compliance.target = std::move(t);
    admin.rules.push_back(std::move(compliance));

    store->add(std::move(admin));
    guard_ = std::make_unique<GuardedRepository>(
        repo_, std::make_shared<core::Pdp>(store));
  }

  common::ManualClock clock_;
  PolicyRepository repo_;
  std::unique_ptr<GuardedRepository> guard_;
};

TEST_F(AdminGuardTest, AuthorizedAdminSucceeds) {
  EXPECT_TRUE(guard_->submit(simple_policy_doc("p1", "doc"), "chief-admin"));
  EXPECT_TRUE(guard_->issue("p1", "chief-admin"));
  EXPECT_TRUE(guard_->withdraw("p1", "chief-admin"));
}

TEST_F(AdminGuardTest, UnauthorizedActorDenied) {
  const RepoOutcome o = guard_->submit(simple_policy_doc("p1", "doc"), "mallory");
  EXPECT_FALSE(o);
  EXPECT_NE(o.reason.find("denied"), std::string::npos);
  EXPECT_EQ(repo_.policy_ids().size(), 0u);  // nothing stored
}

TEST_F(AdminGuardTest, PartialRightsEnforced) {
  ASSERT_TRUE(guard_->submit(simple_policy_doc("p1", "doc"), "chief-admin"));
  // Compliance officer may issue but not submit or withdraw.
  EXPECT_FALSE(guard_->submit(simple_policy_doc("p2", "doc"), "compliance-officer"));
  EXPECT_TRUE(guard_->issue("p1", "compliance-officer"));
  EXPECT_FALSE(guard_->withdraw("p1", "compliance-officer"));
}

TEST_F(AdminGuardTest, AdminRequestShapeIsStable) {
  const core::RequestContext req =
      GuardedRepository::admin_request("alice", "issue", "p9");
  EXPECT_TRUE(req.get(core::Category::kResource, core::attrs::kResourceId)
                  ->contains(core::AttributeValue("policy:p9")));
  EXPECT_TRUE(req.get(core::Category::kAction, core::attrs::kActionId)
                  ->contains(core::AttributeValue("issue")));
}

// ---------------------------------------------------------------------
// Syndication constraints
// ---------------------------------------------------------------------

TEST(SyndicationConstraintTest, ScopeFiltering) {
  SyndicationConstraint scoped;
  scoped.resource_scope = "domain-a/*";

  const auto in_scope = core::node_from_string(
      simple_policy_doc("p1", "domain-a/records"));
  const auto out_of_scope = core::node_from_string(
      simple_policy_doc("p2", "domain-b/records"));
  EXPECT_TRUE(scoped.accepts(*in_scope));
  EXPECT_FALSE(scoped.accepts(*out_of_scope));

  // An unscoped policy is rejected by a scoped domain.
  core::Policy unscoped;
  unscoped.policy_id = "p3";
  core::Rule r;
  r.id = "r";
  r.effect = core::Effect::kPermit;
  unscoped.rules.push_back(std::move(r));
  EXPECT_FALSE(scoped.accepts(unscoped));

  SyndicationConstraint open;
  EXPECT_TRUE(open.accepts(unscoped));
}

TEST(SyndicationConstraintTest, MaxRulesFiltering) {
  SyndicationConstraint small;
  small.max_rules = 1;
  core::Policy big;
  big.policy_id = "big";
  for (int i = 0; i < 3; ++i) {
    core::Rule r;
    r.id = "r" + std::to_string(i);
    r.effect = core::Effect::kPermit;
    big.rules.push_back(std::move(r));
  }
  EXPECT_FALSE(small.accepts(big));
  small.max_rules = 3;
  EXPECT_TRUE(small.accepts(big));
}

TEST(SyndicationReportTest, PayloadRoundTrip) {
  const SyndicationReport r{3, 2, 5};
  const auto back = report_from_payload(report_to_payload(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->accepted, 3u);
  EXPECT_EQ(back->rejected, 2u);
  EXPECT_EQ(back->nodes_reached, 5u);
  EXPECT_FALSE(report_from_payload("junk").has_value());
}

// ---------------------------------------------------------------------
// Syndication over the network (Fig 5)
// ---------------------------------------------------------------------

TEST(SyndicationTest, PropagatesThroughHierarchy) {
  net::Simulator sim;
  net::Network network(sim);
  network.set_default_link({5, 0, 0.0});
  common::ManualClock repo_clock;

  // Root with two children; one child has a grandchild.
  PolicyRepository root_repo(repo_clock), child_a_repo(repo_clock),
      child_b_repo(repo_clock), grand_repo(repo_clock);
  SyndicationServer root(network, "pap/root", root_repo, {});
  SyndicationServer child_a(network, "pap/a", child_a_repo, {});
  SyndicationServer child_b(network, "pap/b", child_b_repo, {});
  SyndicationServer grand(network, "pap/a/1", grand_repo, {});
  root.add_child("pap/a");
  root.add_child("pap/b");
  child_a.add_child("pap/a/1");

  std::optional<SyndicationReport> report;
  root.publish(simple_policy_doc("vo-policy", "shared/data"),
               [&](SyndicationReport r) { report = r; });
  sim.run();

  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->nodes_reached, 4u);
  EXPECT_EQ(report->accepted, 4u);
  EXPECT_EQ(report->rejected, 0u);
  // Every repository now has the policy issued.
  for (const PolicyRepository* repo :
       {&root_repo, &child_a_repo, &child_b_repo, &grand_repo}) {
    EXPECT_NE(repo->issued("vo-policy"), nullptr);
  }
}

TEST(SyndicationTest, LocalConstraintsRejectWithoutBlockingPropagation) {
  net::Simulator sim;
  net::Network network(sim);
  network.set_default_link({5, 0, 0.0});
  common::ManualClock repo_clock;

  PolicyRepository root_repo(repo_clock), scoped_repo(repo_clock),
      grand_repo(repo_clock);
  SyndicationServer root(network, "pap/root", root_repo, {});
  SyndicationConstraint scope_b;
  scope_b.resource_scope = "domain-b/*";
  SyndicationServer scoped(network, "pap/scoped", scoped_repo, scope_b);
  SyndicationServer grand(network, "pap/grand", grand_repo, {});
  root.add_child("pap/scoped");
  scoped.add_child("pap/grand");

  std::optional<SyndicationReport> report;
  root.publish(simple_policy_doc("p", "domain-a/data"),
               [&](SyndicationReport r) { report = r; });
  sim.run();

  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->nodes_reached, 3u);
  EXPECT_EQ(report->accepted, 2u);  // root + grand
  EXPECT_EQ(report->rejected, 1u);  // the scoped middle node
  EXPECT_EQ(scoped_repo.issued("p"), nullptr);
  EXPECT_NE(grand_repo.issued("p"), nullptr);  // still propagated past it
}

TEST(SyndicationTest, DeadChildTimesOutGracefully) {
  net::Simulator sim;
  net::Network network(sim);
  network.set_default_link({5, 0, 0.0});
  common::ManualClock repo_clock;

  PolicyRepository root_repo(repo_clock), live_repo(repo_clock),
      dead_repo(repo_clock);
  SyndicationServer root(network, "pap/root", root_repo, {});
  SyndicationServer live(network, "pap/live", live_repo, {});
  SyndicationServer dead(network, "pap/dead", dead_repo, {});
  root.add_child("pap/live");
  root.add_child("pap/dead");
  network.set_node_up("pap/dead", false);

  std::optional<SyndicationReport> report;
  root.publish(simple_policy_doc("p", "x"),
               [&](SyndicationReport r) { report = r; }, /*per_hop_timeout=*/200);
  sim.run();

  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->nodes_reached, 2u);  // root + live only
  EXPECT_EQ(report->accepted, 2u);
  EXPECT_EQ(dead_repo.issued("p"), nullptr);
}

}  // namespace
}  // namespace mdac::pap
