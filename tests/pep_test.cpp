#include <gtest/gtest.h>

#include <memory>

#include "core/serialization.hpp"
#include "pep/pep.hpp"
#include "pep/remote.hpp"

namespace mdac::pep {
namespace {

core::Decision permit_with_obligation(const std::string& id) {
  core::Decision d = core::Decision::permit();
  d.obligations.push_back(core::ObligationInstance{id, {}});
  return d;
}

// ---------------------------------------------------------------------
// EnforcementPoint gate semantics
// ---------------------------------------------------------------------

TEST(PepTest, PermitAllows) {
  EnforcementPoint pep([](const core::RequestContext&) {
    return core::Decision::permit();
  });
  const Enforcement e = pep.enforce(core::RequestContext::make("a", "r", "read"));
  EXPECT_TRUE(e.allowed);
}

TEST(PepTest, DenyBlocks) {
  EnforcementPoint pep([](const core::RequestContext&) {
    return core::Decision::deny();
  });
  const Enforcement e = pep.enforce(core::RequestContext::make("a", "r", "read"));
  EXPECT_FALSE(e.allowed);
  EXPECT_EQ(e.reason, "denied by policy");
}

TEST(PepTest, FailSafeDenyOnNotApplicableAndIndeterminate) {
  for (const core::Decision& d :
       {core::Decision::not_applicable(),
        core::Decision::indeterminate(core::IndeterminateExtent::kDP,
                                      core::Status::processing_error("x"))}) {
    EnforcementPoint pep([d](const core::RequestContext&) { return d; });
    const Enforcement e = pep.enforce(core::RequestContext::make("a", "r", "read"));
    EXPECT_FALSE(e.allowed);
    EXPECT_NE(e.reason.find("fail-safe"), std::string::npos);
    EXPECT_EQ(pep.denials_by_bias(), 1u);
  }
}

TEST(PepTest, PermitBiasCanBeConfigured) {
  EnforcementPoint pep(
      [](const core::RequestContext&) { return core::Decision::not_applicable(); },
      PepConfig{Bias::kPermit});
  EXPECT_TRUE(pep.enforce(core::RequestContext::make("a", "r", "read")).allowed);
}

// ---------------------------------------------------------------------
// Obligation discharge
// ---------------------------------------------------------------------

TEST(PepObligationTest, HandledObligationFulfilled) {
  EnforcementPoint pep([](const core::RequestContext&) {
    core::Decision d = core::Decision::permit();
    d.obligations.push_back(core::ObligationInstance{
        "audit", {{"msg", core::AttributeValue("granted to alice")}}});
    return d;
  });
  std::vector<std::string> audit_log;
  pep.register_obligation_handler("audit", obligations::audit_to(&audit_log));

  const Enforcement e = pep.enforce(core::RequestContext::make("a", "r", "read"));
  EXPECT_TRUE(e.allowed);
  ASSERT_EQ(audit_log.size(), 1u);
  EXPECT_EQ(audit_log[0], "audit msg=granted to alice");
  EXPECT_EQ(e.obligations_fulfilled, std::vector<std::string>{"audit"});
}

TEST(PepObligationTest, UnhandledObligationOnPermitDenies) {
  EnforcementPoint pep([](const core::RequestContext&) {
    return permit_with_obligation("mystery-obligation");
  });
  const Enforcement e = pep.enforce(core::RequestContext::make("a", "r", "read"));
  EXPECT_FALSE(e.allowed);
  EXPECT_NE(e.reason.find("mystery-obligation"), std::string::npos);
  EXPECT_EQ(pep.denials_by_obligation(), 1u);
}

TEST(PepObligationTest, FailingObligationOnPermitDenies) {
  EnforcementPoint pep([](const core::RequestContext&) {
    return permit_with_obligation("flaky");
  });
  pep.register_obligation_handler("flaky", obligations::always_fail());
  const Enforcement e = pep.enforce(core::RequestContext::make("a", "r", "read"));
  EXPECT_FALSE(e.allowed);
}

TEST(PepObligationTest, DenyObligationFailureStaysDeny) {
  EnforcementPoint pep([](const core::RequestContext&) {
    core::Decision d = core::Decision::deny();
    d.obligations.push_back(core::ObligationInstance{"notify-security", {}});
    return d;
  });
  // No handler registered; a deny must still be a deny.
  const Enforcement e = pep.enforce(core::RequestContext::make("a", "r", "read"));
  EXPECT_FALSE(e.allowed);
  EXPECT_EQ(pep.denials_by_obligation(), 0u);
}

TEST(PepObligationTest, MultipleObligationsAllMustSucceed) {
  EnforcementPoint pep([](const core::RequestContext&) {
    core::Decision d = core::Decision::permit();
    d.obligations.push_back(core::ObligationInstance{"first", {}});
    d.obligations.push_back(core::ObligationInstance{"second", {}});
    return d;
  });
  pep.register_obligation_handler("first", obligations::no_op());
  pep.register_obligation_handler("second", obligations::always_fail());
  EXPECT_FALSE(pep.enforce(core::RequestContext::make("a", "r", "read")).allowed);
}

// ---------------------------------------------------------------------
// Decision cache integration
// ---------------------------------------------------------------------

TEST(PepCacheTest, CacheShortCircuitsBackend) {
  int backend_calls = 0;
  EnforcementPoint pep([&](const core::RequestContext&) {
    ++backend_calls;
    return core::Decision::permit();
  });
  common::ManualClock clock;
  cache::DecisionCache cache(clock, 1000);
  pep.set_cache(&cache);

  const auto req = core::RequestContext::make("a", "r", "read");
  EXPECT_TRUE(pep.enforce(req).allowed);
  EXPECT_TRUE(pep.enforce(req).allowed);
  EXPECT_EQ(backend_calls, 1);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PepCacheTest, ExpiredEntryGoesBackToBackend) {
  int backend_calls = 0;
  EnforcementPoint pep([&](const core::RequestContext&) {
    ++backend_calls;
    return core::Decision::deny();
  });
  common::ManualClock clock;
  cache::DecisionCache cache(clock, 100);
  pep.set_cache(&cache);

  const auto req = core::RequestContext::make("a", "r", "read");
  (void)pep.enforce(req);
  clock.advance(200);
  (void)pep.enforce(req);
  EXPECT_EQ(backend_calls, 2);
}

// ---------------------------------------------------------------------
// Remote PDP (pull model over the simulated network)
// ---------------------------------------------------------------------

class RemotePdpTest : public ::testing::Test {
 protected:
  RemotePdpTest() : network_(sim_) {
    network_.set_default_link({10, 0, 0.0});
    auto store = std::make_shared<core::PolicyStore>();
    core::Policy p;
    p.policy_id = "permit-reads";
    p.target_spec.require(core::Category::kAction, core::attrs::kActionId,
                          core::AttributeValue("read"));
    core::Rule r;
    r.id = "permit";
    r.effect = core::Effect::kPermit;
    p.rules.push_back(std::move(r));
    store->add(std::move(p));
    pdp_ = std::make_shared<core::Pdp>(store);
  }

  net::Simulator sim_;
  net::Network network_;
  std::shared_ptr<core::Pdp> pdp_;
};

TEST_F(RemotePdpTest, PullModelRoundTrip) {
  PdpService service(network_, "domain/pdp", pdp_);
  RemotePdpClient client(network_, "domain/pep", "domain/pdp");

  std::optional<core::Decision> got;
  common::TimePoint decided_at = -1;
  client.evaluate(core::RequestContext::make("alice", "doc", "read"),
                  [&](core::Decision d) {
                    got = d;
                    decided_at = sim_.now();
                  });
  sim_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->is_permit());
  EXPECT_EQ(service.requests_served(), 1u);
  // Round trip = request + response latency.
  EXPECT_EQ(decided_at, 20);
}

TEST_F(RemotePdpTest, DenySideCarriesThrough) {
  PdpService service(network_, "domain/pdp", pdp_);
  RemotePdpClient client(network_, "domain/pep", "domain/pdp");
  std::optional<core::Decision> got;
  client.evaluate(core::RequestContext::make("alice", "doc", "write"),
                  [&](core::Decision d) { got = d; });
  sim_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->is_not_applicable());
}

TEST_F(RemotePdpTest, TimeoutYieldsIndeterminate) {
  PdpService service(network_, "domain/pdp", pdp_);
  network_.set_node_up("domain/pdp", false);
  RemotePdpClient client(network_, "domain/pep", "domain/pdp", /*timeout=*/100);

  std::optional<core::Decision> got;
  client.evaluate(core::RequestContext::make("alice", "doc", "read"),
                  [&](core::Decision d) { got = d; });
  sim_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->is_indeterminate());
  EXPECT_EQ(client.timeouts(), 1u);
}

TEST_F(RemotePdpTest, MalformedRequestHandledAtService) {
  PdpService service(network_, "domain/pdp", pdp_);
  net::RpcNode raw_client(network_, "raw");
  std::optional<std::string> response;
  raw_client.call("domain/pdp", kAuthzRequestType, "<garbage", 1000,
                  [&](std::optional<std::string> r) { response = r; });
  sim_.run();
  ASSERT_TRUE(response.has_value());
  const core::Decision d = core::decision_from_string(*response);
  EXPECT_TRUE(d.is_indeterminate());
  EXPECT_EQ(d.status.code, core::StatusCode::kSyntaxError);
}

TEST_F(RemotePdpTest, EndToEndPepOverNetwork) {
  // Full pull-model composition: EnforcementPoint whose decision source
  // blocks on the simulated network round trip.
  PdpService service(network_, "domain/pdp", pdp_);
  RemotePdpClient client(network_, "domain/pep", "domain/pdp");

  EnforcementPoint pep([&](const core::RequestContext& request) {
    std::optional<core::Decision> decision;
    client.evaluate(request, [&](core::Decision d) { decision = d; });
    sim_.run();  // drive the simulator until the response lands
    return decision.value_or(core::Decision::indeterminate(
        core::IndeterminateExtent::kDP, core::Status::processing_error("lost")));
  });

  EXPECT_TRUE(pep.enforce(core::RequestContext::make("a", "r", "read")).allowed);
  EXPECT_FALSE(pep.enforce(core::RequestContext::make("a", "r", "write")).allowed);
}

}  // namespace
}  // namespace mdac::pep
