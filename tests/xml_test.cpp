#include <gtest/gtest.h>

#include "xml/xml.hpp"

namespace mdac::xml {
namespace {

TEST(XmlParseTest, SimpleElement) {
  const Element e = parse("<a/>");
  EXPECT_EQ(e.name, "a");
  EXPECT_TRUE(e.children.empty());
  EXPECT_TRUE(e.text.empty());
}

TEST(XmlParseTest, AttributesAndText) {
  const Element e = parse(R"(<a x="1" y='two'>hello</a>)");
  EXPECT_EQ(e.attr("x"), "1");
  EXPECT_EQ(e.attr("y"), "two");
  EXPECT_FALSE(e.attr("z").has_value());
  EXPECT_EQ(e.attr_or("z", "dflt"), "dflt");
  EXPECT_EQ(e.text, "hello");
}

TEST(XmlParseTest, NestedChildren) {
  const Element e = parse("<root><a>1</a><b/><a>2</a></root>");
  EXPECT_EQ(e.children.size(), 3u);
  ASSERT_NE(e.child("a"), nullptr);
  EXPECT_EQ(e.child("a")->text, "1");
  EXPECT_EQ(e.children_named("a").size(), 2u);
  EXPECT_EQ(e.children_named("a")[1]->text, "2");
  EXPECT_EQ(e.child("missing"), nullptr);
}

TEST(XmlParseTest, XmlDeclarationAndComments) {
  const Element e = parse(
      "<?xml version=\"1.0\"?>\n"
      "<!-- leading comment -->\n"
      "<root><!-- inner --><a/></root>\n"
      "<!-- trailing -->");
  EXPECT_EQ(e.name, "root");
  EXPECT_EQ(e.children.size(), 1u);
}

TEST(XmlParseTest, PredefinedEntities) {
  const Element e = parse("<a attr=\"&lt;&amp;&gt;\">&quot;x&apos; &amp; y</a>");
  EXPECT_EQ(e.attr("attr"), "<&>");
  EXPECT_EQ(e.text, "\"x' & y");
}

TEST(XmlParseTest, NumericCharacterReferences) {
  const Element e = parse("<a>&#65;&#x42;&#xe9;</a>");
  EXPECT_EQ(e.text, "AB\xc3\xa9");  // 'A', 'B', e-acute in UTF-8
}

TEST(XmlParseTest, Cdata) {
  const Element e = parse("<a><![CDATA[<not-xml> & raw]]></a>");
  EXPECT_EQ(e.text, "<not-xml> & raw");
}

TEST(XmlParseTest, WhitespaceInTags) {
  const Element e = parse("<a  x = \"1\"   ></a >");
  EXPECT_EQ(e.attr("x"), "1");
}

TEST(XmlParseTest, NamespacePrefixesKeptLiteral) {
  const Element e = parse("<ns:a ns:attr=\"v\"><ns:b/></ns:a>");
  EXPECT_EQ(e.name, "ns:a");
  EXPECT_EQ(e.attr("ns:attr"), "v");
  EXPECT_NE(e.child("ns:b"), nullptr);
}

// --- Malformed input ---------------------------------------------------

TEST(XmlParseTest, MismatchedEndTag) {
  EXPECT_THROW(parse("<a><b></a></b>"), ParseError);
}

TEST(XmlParseTest, DuplicateAttribute) {
  EXPECT_THROW(parse("<a x=\"1\" x=\"2\"/>"), ParseError);
}

TEST(XmlParseTest, UnterminatedElement) {
  EXPECT_THROW(parse("<a><b/>"), ParseError);
}

TEST(XmlParseTest, TrailingContent) {
  EXPECT_THROW(parse("<a/><b/>"), ParseError);
}

TEST(XmlParseTest, BadEntity) {
  EXPECT_THROW(parse("<a>&nope;</a>"), ParseError);
  EXPECT_THROW(parse("<a>&#xzz;</a>"), ParseError);
}

TEST(XmlParseTest, LtInAttribute) {
  EXPECT_THROW(parse("<a x=\"<\"/>"), ParseError);
}

TEST(XmlParseTest, ErrorCarriesLineAndColumn) {
  try {
    parse("<a>\n  <b>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GE(e.line(), 3u);
  }
}

TEST(XmlParseTest, TryParseReturnsNulloptWithError) {
  std::string error;
  EXPECT_FALSE(try_parse("<a", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(try_parse("<a/>").has_value());
}

// --- Writing -------------------------------------------------------------

TEST(XmlWriteTest, RoundTripCompact) {
  Element e("Policy");
  e.set_attr("PolicyId", "p<1>");
  e.add_child("Description").text = "says \"hi\" & <bye>";
  Element& target = e.add_child("Target");
  target.set_attr("x", "1");

  const std::string s = to_string(e);
  const Element back = parse(s);
  EXPECT_EQ(back, e);
}

TEST(XmlWriteTest, PrettyPrintingRoundTrips) {
  Element e("a");
  e.add_child("b").set_attr("k", "v");
  e.add_child("c");
  const std::string pretty = to_string(e, /*pretty=*/true);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  // Pretty output parses back to the same structure (no stray text nodes,
  // because elements with children carry no text of their own).
  const Element back = parse(pretty);
  EXPECT_EQ(back.name, "a");
  EXPECT_EQ(back.children.size(), 2u);
}

TEST(XmlWriteTest, SetAttrReplacesExisting) {
  Element e("a");
  e.set_attr("k", "1");
  e.set_attr("k", "2");
  EXPECT_EQ(e.attributes.size(), 1u);
  EXPECT_EQ(e.attr("k"), "2");
}

TEST(XmlWriteTest, EscapingFunctions) {
  EXPECT_EQ(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(escape_attr("\"'"), "&quot;&apos;");
}

// --- Helpers ------------------------------------------------------------

TEST(XmlHelpersTest, FindPath) {
  const Element e = parse("<a><b><c><d>deep</d></c></b></a>");
  const Element* d = find_path(e, "b/c/d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->text, "deep");
  EXPECT_EQ(find_path(e, "b/x"), nullptr);
  EXPECT_EQ(find_path(e, ""), &e);
}

TEST(XmlHelpersTest, SubtreeSize) {
  const Element e = parse("<a><b><c/></b><d/></a>");
  EXPECT_EQ(e.subtree_size(), 4u);
}

}  // namespace
}  // namespace mdac::xml
