// Integration tests: whole-architecture scenarios exercising many
// modules together, the way the paper's Fig. 1 environment would run.
#include <gtest/gtest.h>

#include <memory>

#include "capability/capability.hpp"
#include "analysis/analysis.hpp"
#include "core/serialization.hpp"
#include "delegation/delegation.hpp"
#include "dependability/replicated_pdp.hpp"
#include "domain/domain.hpp"
#include "models/chinese_wall.hpp"
#include "pap/syndication.hpp"
#include "pep/remote.hpp"
#include "rbac/adapter.hpp"

namespace mdac {
namespace {

// ---------------------------------------------------------------------
// Scenario 1: policy authored at the VO root reaches every domain via
// syndication, is adopted into live PDPs, and governs cross-domain
// requests end to end.
// ---------------------------------------------------------------------

TEST(IntegrationTest, SyndicatedPolicyGovernsCrossDomainAccess) {
  net::Simulator sim;
  net::Network network(sim);
  network.set_default_link({5, 0, 0.0});
  common::ManualClock clock(1'000'000);

  domain::Domain home("home", clock), target("target", clock);
  home.register_user("alice", {{core::attrs::kRole,
                                core::Bag(core::AttributeValue("analyst"))}});
  target.trust_domain(home);

  // VO-wide policy distributed through the Fig-5 hierarchy.
  pap::PolicyRepository root_repo(clock);
  pap::SyndicationServer root(network, "pap/root", root_repo, {});
  pap::SyndicationServer target_pap(network, "pap/target", target.repository(), {});
  root.add_child("pap/target");

  core::Policy shared;
  shared.policy_id = "vo-policy";
  shared.rule_combining = "first-applicable";
  core::Rule permit;
  permit.id = "analysts-read";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kSubject, core::attrs::kRole,
            core::AttributeValue("analyst"));
  t.require(core::Category::kResource, core::attrs::kResourceId,
            core::AttributeValue("vo-data"));
  t.require(core::Category::kAction, core::attrs::kActionId,
            core::AttributeValue("read"));
  permit.target = std::move(t);
  shared.rules.push_back(std::move(permit));
  core::Rule deny;
  deny.id = "deny";
  deny.effect = core::Effect::kDeny;
  shared.rules.push_back(std::move(deny));

  pap::SyndicationReport report;
  root.publish(core::node_to_string(shared),
               [&](pap::SyndicationReport r) { report = r; });
  sim.run();
  ASSERT_EQ(report.accepted, 2u);

  // The target domain adopts what its PAP received...
  ASSERT_EQ(target.adopt_issued_policies(), 1u);

  // ...and a federated request from `home` is now decidable.
  const auto token = home.issue_identity_assertion("alice", "target", 60'000);
  const auto result = target.handle_cross_domain_request(token, "vo-data", "read");
  EXPECT_TRUE(result.allowed);
  const auto denied = target.handle_cross_domain_request(token, "vo-data", "write");
  EXPECT_FALSE(denied.allowed);  // the syndicated policy only permits reads
}

// ---------------------------------------------------------------------
// Scenario 2: the full pull model with a REPLICATED decision service:
// PEP -> failover dispatcher -> PDP replicas, surviving a crash
// mid-workload.
// ---------------------------------------------------------------------

TEST(IntegrationTest, ReplicatedPullModelSurvivesCrash) {
  net::Simulator sim;
  net::Network network(sim);
  network.set_default_link({5, 0, 0.0});

  auto make_pdp = [] {
    auto store = std::make_shared<core::PolicyStore>();
    core::Policy p;
    p.policy_id = "permit-reads";
    p.rule_combining = "first-applicable";
    core::Rule permit;
    permit.id = "r";
    permit.effect = core::Effect::kPermit;
    core::Target t;
    t.require(core::Category::kAction, core::attrs::kActionId,
              core::AttributeValue("read"));
    permit.target = std::move(t);
    p.rules.push_back(std::move(permit));
    core::Rule deny;
    deny.id = "d";
    deny.effect = core::Effect::kDeny;
    p.rules.push_back(std::move(deny));
    store->add(std::move(p));
    return std::make_shared<core::Pdp>(store);
  };

  dependability::PdpReplica r0(network, "pdp/0", make_pdp());
  dependability::PdpReplica r1(network, "pdp/1", make_pdp());
  dependability::ReplicatedPdpClient dispatcher(
      network, "dispatcher", {"pdp/0", "pdp/1"},
      dependability::DispatchStrategy::kFailover, 100);

  pep::EnforcementPoint pep([&](const core::RequestContext& request) {
    core::Decision decision = core::Decision::indeterminate(
        core::IndeterminateExtent::kDP, core::Status::processing_error("lost"));
    dispatcher.evaluate(request, [&](core::Decision d) { decision = std::move(d); });
    sim.run();
    return decision;
  });

  EXPECT_TRUE(pep.enforce(core::RequestContext::make("a", "r", "read")).allowed);
  r0.set_up(false);  // primary crashes
  EXPECT_TRUE(pep.enforce(core::RequestContext::make("a", "r", "read")).allowed);
  EXPECT_FALSE(pep.enforce(core::RequestContext::make("a", "r", "write")).allowed);
  EXPECT_EQ(dispatcher.stats().failovers, 2u);
  r1.set_up(false);  // everything down: fail-safe deny at the PEP
  const auto blackout = pep.enforce(core::RequestContext::make("a", "r", "read"));
  EXPECT_FALSE(blackout.allowed);
  EXPECT_TRUE(blackout.decision.is_indeterminate());
}

// ---------------------------------------------------------------------
// Scenario 3: RBAC + delegation + conflict analysis working on one
// policy base: a partner-issued policy passes reduction, and static
// analysis finds the conflict it introduces.
// ---------------------------------------------------------------------

TEST(IntegrationTest, DelegatedPolicyDetectedInConflictAnalysis) {
  delegation::DelegationRegistry registry;
  registry.add_root("home-admin");
  ASSERT_TRUE(registry.grant(
      {"home-admin", "partner-admin", "shared/*", false, 0}));

  // Local permit, authored by the root authority.
  core::Policy local;
  local.policy_id = "local-permit";
  local.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                            core::AttributeValue("shared/data"));
  core::Rule lr;
  lr.id = "permit-alice";
  lr.effect = core::Effect::kPermit;
  core::Target lt;
  lt.require(core::Category::kSubject, core::attrs::kSubjectId,
             core::AttributeValue("alice"));
  lr.target = std::move(lt);
  local.rules.push_back(std::move(lr));

  // Partner-issued deny on the same tuple (within delegated scope).
  core::Policy partner;
  partner.policy_id = "partner-deny";
  partner.issuer = "partner-admin";
  partner.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                              core::AttributeValue("shared/data"));
  core::Rule pr;
  pr.id = "deny-alice";
  pr.effect = core::Effect::kDeny;
  core::Target pt;
  pt.require(core::Category::kSubject, core::attrs::kSubjectId,
             core::AttributeValue("alice"));
  pr.target = std::move(pt);
  partner.rules.push_back(std::move(pr));

  core::PolicyStore store;
  store.add(local.clone());
  store.add(partner.clone());

  // Reduction accepts both (partner is within scope).
  const auto filter = delegation::filter_by_reduction(store, registry);
  ASSERT_EQ(filter.accepted.size(), 2u);

  // Static analysis flags the modality conflict before deployment.
  const auto report = analysis::analyse({&local, &partner});
  ASSERT_EQ(report.conflicts.size(), 1u);

  // At runtime, deny-overrides resolves it deterministically.
  auto shared_store = std::make_shared<core::PolicyStore>();
  shared_store->add(std::move(local));
  shared_store->add(std::move(partner));
  core::Pdp pdp(shared_store, core::PdpConfig{"deny-overrides", true});
  EXPECT_TRUE(pdp.evaluate(core::RequestContext::make("alice", "shared/data", "read"))
                  .is_deny());

  // Revoking the partner flips the outcome once the filter is re-applied.
  registry.revoke_grantee("partner-admin");
  const auto refiltered = delegation::filter_by_reduction(*shared_store, registry);
  auto clean_store = std::make_shared<core::PolicyStore>();
  for (const auto* node : refiltered.accepted) {
    clean_store->add(node->clone_node());
  }
  core::Pdp clean_pdp(clean_store);
  EXPECT_TRUE(
      clean_pdp.evaluate(core::RequestContext::make("alice", "shared/data", "read"))
          .is_permit());
}

// ---------------------------------------------------------------------
// Scenario 4: Chinese-Wall meta-policy enforced at runtime through the
// history PIP: a consultant who touches bank-a's data loses access to
// bank-b inside the same VO.
// ---------------------------------------------------------------------

TEST(IntegrationTest, ChineseWallAcrossDomainHistory) {
  common::ManualClock clock(0);
  domain::Domain consultancy("consultancy", clock);
  consultancy.register_user("carol", {});

  // Policy: permit reading any bank ledger UNLESS history shows the
  // subject already touched the other bank (wall condition via the
  // accessed-resources bag from the history PIP).
  core::Policy p;
  p.policy_id = "chinese-wall";
  p.rule_combining = "first-applicable";

  core::Rule deny_cross;
  deny_cross.id = "wall";
  deny_cross.effect = core::Effect::kDeny;
  // deny if (resource == bank-a:ledger AND bank-b:ledger in history) or
  //         (resource == bank-b:ledger AND bank-a:ledger in history)
  deny_cross.condition = core::make_apply(
      "or",
      core::make_apply(
          "and",
          core::make_apply("any-of", core::function_ref("string-equal"),
                           core::lit("bank-a:ledger"),
                           core::designator(core::Category::kResource,
                                            core::attrs::kResourceId,
                                            core::DataType::kString)),
          core::make_apply("is-in", core::lit("bank-b:ledger"),
                           core::designator(core::Category::kSubject,
                                            "accessed-resources",
                                            core::DataType::kString))),
      core::make_apply(
          "and",
          core::make_apply("any-of", core::function_ref("string-equal"),
                           core::lit("bank-b:ledger"),
                           core::designator(core::Category::kResource,
                                            core::attrs::kResourceId,
                                            core::DataType::kString)),
          core::make_apply("is-in", core::lit("bank-a:ledger"),
                           core::designator(core::Category::kSubject,
                                            "accessed-resources",
                                            core::DataType::kString))));
  p.rules.push_back(std::move(deny_cross));

  core::Rule permit;
  permit.id = "permit-ledgers";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require_any(core::Category::kResource, core::attrs::kResourceId,
                {core::AttributeValue("bank-a:ledger"),
                 core::AttributeValue("bank-b:ledger")});
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  consultancy.add_policy(std::move(p));

  // Fresh consultant: both banks reachable.
  EXPECT_TRUE(consultancy
                  .enforce(core::RequestContext::make("carol", "bank-a:ledger", "read"))
                  .allowed);
  // After touching bank-a, bank-b is behind the wall...
  EXPECT_FALSE(consultancy
                   .enforce(core::RequestContext::make("carol", "bank-b:ledger", "read"))
                   .allowed);
  // ...but bank-a remains accessible.
  EXPECT_TRUE(consultancy
                  .enforce(core::RequestContext::make("carol", "bank-a:ledger", "read"))
                  .allowed);
  // A different consultant starts clean.
  EXPECT_TRUE(consultancy
                  .enforce(core::RequestContext::make("dave", "bank-b:ledger", "read"))
                  .allowed);

  // The same invariant expressed through the models::ChineseWall oracle.
  models::ChineseWall wall;
  wall.add_company("bank-a", "banking");
  wall.add_company("bank-b", "banking");
  wall.assign_object("bank-a:ledger", "bank-a");
  wall.assign_object("bank-b:ledger", "bank-b");
  wall.record_access("carol", "bank-a:ledger");
  EXPECT_FALSE(wall.can_access("carol", "bank-b:ledger"));
  EXPECT_TRUE(wall.can_access("dave", "bank-b:ledger"));
}

// ---------------------------------------------------------------------
// Scenario 5: capability flow between two domains with RBAC-compiled
// community policy at the issuer side.
// ---------------------------------------------------------------------

TEST(IntegrationTest, RbacBackedCapabilityService) {
  common::ManualClock clock(1000);

  rbac::RbacModel members;
  members.add_user("alice");
  members.add_role("submitter");
  ASSERT_TRUE(members.grant_permission("submitter", {"job-queue", "submit"}));
  ASSERT_TRUE(members.assign_user("alice", "submitter"));

  auto issuing_store = std::make_shared<core::PolicyStore>();
  issuing_store->add(rbac::compile_to_policy_set(members, "community"));
  auto issuing_pdp = std::make_shared<core::Pdp>(issuing_store);
  // Roles resolved from the RBAC model at issuance time.
  static rbac::RbacAttributeProvider provider(members);
  issuing_pdp->set_resolver(&provider);

  const crypto::KeyPair key = crypto::KeyPair::generate("community-cas");
  capability::CapabilityService cas("community-cas", key, issuing_pdp, clock, 10'000);

  capability::CapabilityRequest request;
  request.subject = "alice";
  request.resource = "job-queue";
  request.action = "submit";
  request.audience = "cluster";
  const auto issued = cas.issue(request);
  ASSERT_TRUE(issued.token.has_value());

  crypto::TrustStore cluster_trust;
  cluster_trust.add_trusted_key(key);
  capability::CapabilityGate gate("cluster", cluster_trust, clock, nullptr);
  EXPECT_TRUE(gate.admit(*issued.token, "job-queue", "submit").allowed);

  // De-assigning the role stops future issuance (already-issued tokens
  // live until expiry — the classic capability-revocation trade-off).
  ASSERT_TRUE(members.deassign_user("alice", "submitter"));
  EXPECT_FALSE(cas.issue(request).token.has_value());
  EXPECT_TRUE(gate.admit(*issued.token, "job-queue", "submit").allowed);
  clock.advance(10'000);
  EXPECT_FALSE(gate.admit(*issued.token, "job-queue", "submit").allowed);
}

}  // namespace
}  // namespace mdac
