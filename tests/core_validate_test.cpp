#include <gtest/gtest.h>

#include "core/validate.hpp"

namespace mdac::core {
namespace {

Policy good_policy() {
  Policy p;
  p.policy_id = "good";
  p.rule_combining = "first-applicable";
  p.target_spec.require(Category::kResource, attrs::kResourceId,
                        AttributeValue("doc"));
  Rule r;
  r.id = "permit";
  r.effect = Effect::kPermit;
  r.condition = make_apply("any-of", function_ref("string-equal"), lit("doctor"),
                           designator(Category::kSubject, attrs::kRole,
                                      DataType::kString));
  p.rules.push_back(std::move(r));
  return p;
}

bool has_finding(const ValidationReport& report, const std::string& fragment,
                 FindingSeverity severity) {
  for (const auto& f : report.findings) {
    if (f.severity == severity && f.message.find(fragment) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(ValidateTest, CleanPolicyPasses) {
  const ValidationReport report = validate(good_policy());
  EXPECT_TRUE(report.ok())
      << (report.findings.empty() ? std::string() : report.findings[0].message);
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(ValidateTest, UnknownCombiningAlgorithm) {
  Policy p = good_policy();
  p.rule_combining = "majority-vote";
  const ValidationReport report = validate(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_finding(report, "majority-vote", FindingSeverity::kError));
}

TEST(ValidateTest, UnknownFunctionInCondition) {
  Policy p = good_policy();
  p.rules[0].condition = make_apply("frobnicate", lit("x"));
  const ValidationReport report = validate(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_finding(report, "frobnicate", FindingSeverity::kError));
}

TEST(ValidateTest, ArityMismatchInNestedExpression) {
  Policy p = good_policy();
  p.rules[0].condition =
      make_apply("and", lit(true), make_apply("string-equal", lit("only-one")));
  const ValidationReport report = validate(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_finding(report, "expects 2 arguments", FindingSeverity::kError));
}

TEST(ValidateTest, HigherOrderNeedsFunctionRef) {
  Policy p = good_policy();
  p.rules[0].condition = make_apply("any-of", lit("not-a-ref"), lit_bag(Bag()));
  const ValidationReport report = validate(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_finding(report, "function reference", FindingSeverity::kError));
}

TEST(ValidateTest, UnknownFunctionRefInsideHigherOrder) {
  Policy p = good_policy();
  p.rules[0].condition =
      make_apply("any-of", function_ref("no-such-fn"), lit("x"), lit_bag(Bag()));
  const ValidationReport report = validate(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_finding(report, "no-such-fn", FindingSeverity::kError));
}

TEST(ValidateTest, DuplicateRuleIds) {
  Policy p = good_policy();
  Rule dup;
  dup.id = "permit";  // same as the existing rule
  dup.effect = Effect::kDeny;
  p.rules.push_back(std::move(dup));
  const ValidationReport report = validate(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_finding(report, "duplicate rule id", FindingSeverity::kError));
}

TEST(ValidateTest, EmptyPolicyWarns) {
  Policy p;
  p.policy_id = "empty";
  const ValidationReport report = validate(p);
  EXPECT_TRUE(report.ok());  // warning, not error
  EXPECT_TRUE(has_finding(report, "no rules", FindingSeverity::kWarning));
}

TEST(ValidateTest, TypeMismatchedMatchWarns) {
  Policy p = good_policy();
  Match m;
  m.function_id = "string-equal";
  m.literal = AttributeValue(std::int64_t{5});  // integer literal...
  m.category = Category::kSubject;
  m.attribute_id = "level";
  m.data_type = DataType::kString;  // ...string designator
  AllOf all;
  all.matches.push_back(std::move(m));
  AnyOf any;
  any.all_ofs.push_back(std::move(all));
  p.target_spec.any_ofs.push_back(std::move(any));
  const ValidationReport report = validate(p);
  EXPECT_TRUE(has_finding(report, "can never match", FindingSeverity::kWarning));
}

TEST(ValidateTest, MatchWithHigherOrderFunctionIsError) {
  Policy p = good_policy();
  Match m;
  m.function_id = "any-of";
  m.literal = AttributeValue("x");
  m.category = Category::kSubject;
  m.attribute_id = "a";
  AllOf all;
  all.matches.push_back(std::move(m));
  AnyOf any;
  any.all_ofs.push_back(std::move(all));
  p.target_spec.any_ofs.push_back(std::move(any));
  const ValidationReport report = validate(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_finding(report, "higher-order", FindingSeverity::kError));
}

TEST(ValidateTest, BrokenObligationAssignment) {
  Policy p = good_policy();
  ObligationExpr ob;
  ob.id = "audit";
  AttributeAssignmentExpr a;
  a.attribute_id = "msg";
  a.expr = nullptr;  // forgot the expression
  ob.assignments.push_back(std::move(a));
  p.rules[0].obligations.push_back(std::move(ob));
  const ValidationReport report = validate(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_finding(report, "no expression", FindingSeverity::kError));
}

TEST(ValidateTest, PolicySetChecksRecursively) {
  PolicySet root;
  root.policy_set_id = "root";
  Policy bad = good_policy();
  bad.rule_combining = "nonsense";
  root.add(std::move(bad));
  const ValidationReport report = validate(root);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_finding(report, "nonsense", FindingSeverity::kError));
}

TEST(ValidateTest, DuplicateChildIdsInPolicySet) {
  PolicySet root;
  root.policy_set_id = "root";
  root.add(good_policy());
  root.add(good_policy());  // same id twice
  const ValidationReport report = validate(root);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_finding(report, "duplicate child id", FindingSeverity::kError));
}

TEST(ValidateTest, ReferenceResolutionAgainstStore) {
  PolicySet root;
  root.policy_set_id = "root";
  root.add_reference("exists");
  root.add_reference("ghost");

  PolicyStore store;
  Policy target = good_policy();
  target.policy_id = "exists";
  store.add(std::move(target));

  const ValidationReport with_store = validate(root, &store);
  EXPECT_FALSE(with_store.ok());
  EXPECT_TRUE(has_finding(with_store, "ghost", FindingSeverity::kError));
  EXPECT_FALSE(has_finding(with_store, "exists", FindingSeverity::kError));

  // Without a store, references produce warnings, not errors.
  const ValidationReport without_store = validate(root);
  EXPECT_TRUE(without_store.ok());
  EXPECT_EQ(without_store.warning_count(), 2u);
}

TEST(ValidateTest, ValidateStoreCoversEverything) {
  PolicyStore store;
  Policy good = good_policy();
  store.add(std::move(good));
  Policy bad = good_policy();
  bad.policy_id = "bad";
  bad.rule_combining = "wat";
  store.add(std::move(bad));
  const ValidationReport report = validate_store(store);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.error_count(), 1u);
}

TEST(ValidateTest, EmptyAnyOfGroupWarns) {
  Policy p = good_policy();
  p.target_spec.any_ofs.push_back(AnyOf{});
  const ValidationReport report = validate(p);
  EXPECT_TRUE(has_finding(report, "never matches", FindingSeverity::kWarning));
}

}  // namespace
}  // namespace mdac::core
