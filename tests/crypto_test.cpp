#include <gtest/gtest.h>

#include <string>

#include "common/bytes.hpp"
#include "crypto/certificate.hpp"
#include "crypto/cipher.hpp"
#include "crypto/hmac.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"

namespace mdac::crypto {
namespace {

using common::Bytes;
using common::to_bytes;

// ---------------------------------------------------------------------
// SHA-256 against FIPS / NIST vectors
// ---------------------------------------------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(digest_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, OneMillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  for (std::size_t cut = 0; cut <= msg.size(); ++cut) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, cut));
    h.update(std::string_view(msg).substr(cut));
    EXPECT_EQ(digest_hex(h.finish()), digest_hex(Sha256::hash(msg)));
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes hit all padding branches.
  for (const std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string msg(n, 'x');
    Sha256 incremental;
    for (char c : msg) incremental.update(std::string_view(&c, 1));
    EXPECT_EQ(digest_hex(incremental.finish()), digest_hex(Sha256::hash(msg)))
        << "length " << n;
  }
}

TEST(Sha256Test, ReuseAfterFinishThrows) {
  Sha256 h;
  h.update(std::string_view("x"));
  (void)h.finish();
  EXPECT_THROW(h.update(std::string_view("y")), std::logic_error);
  EXPECT_THROW(h.finish(), std::logic_error);
}

// ---------------------------------------------------------------------
// HMAC-SHA-256 against RFC 4231 vectors
// ---------------------------------------------------------------------

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Digest d = hmac_sha256(key, to_bytes("Hi There"));
  EXPECT_EQ(common::hex_encode(common::Bytes(d.begin(), d.end())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const Digest d = hmac_sha256("Jefe", "what do ya want for nothing?");
  EXPECT_EQ(common::hex_encode(common::Bytes(d.begin(), d.end())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const Digest d = hmac_sha256(key, to_bytes("Test Using Larger Than Block-Size "
                                             "Key - Hash Key First"));
  EXPECT_EQ(common::hex_encode(common::Bytes(d.begin(), d.end())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysGiveDifferentTags) {
  EXPECT_NE(hmac_sha256("key1", "message"), hmac_sha256("key2", "message"));
  EXPECT_NE(hmac_sha256("key", "message1"), hmac_sha256("key", "message2"));
}

// ---------------------------------------------------------------------
// CTR cipher
// ---------------------------------------------------------------------

TEST(CipherTest, RoundTrip) {
  const Bytes key = to_bytes("secret-key");
  const Bytes nonce = to_bytes("0123456789abcdef");
  const Bytes plaintext = to_bytes("attack at dawn, bring the policy files");
  const EncryptedPayload enc = ctr_encrypt(key, nonce, plaintext);
  EXPECT_NE(enc.ciphertext, plaintext);
  EXPECT_EQ(ctr_decrypt(key, enc), plaintext);
}

TEST(CipherTest, WrongKeyFailsToDecrypt) {
  const Bytes nonce = to_bytes("0123456789abcdef");
  const Bytes plaintext = to_bytes("hello world");
  const EncryptedPayload enc = ctr_encrypt(to_bytes("key-a"), nonce, plaintext);
  EXPECT_NE(ctr_decrypt(to_bytes("key-b"), enc), plaintext);
}

TEST(CipherTest, DistinctNoncesGiveDistinctCiphertexts) {
  const Bytes key = to_bytes("key");
  const Bytes plaintext = to_bytes("same plaintext, twice");
  const auto a = ctr_encrypt(key, to_bytes("nonce-a-000000"), plaintext);
  const auto b = ctr_encrypt(key, to_bytes("nonce-b-000000"), plaintext);
  EXPECT_NE(a.ciphertext, b.ciphertext);
}

TEST(CipherTest, MultiBlockPlaintext) {
  const Bytes key = to_bytes("key");
  const Bytes nonce = to_bytes("n");
  Bytes plaintext;
  for (int i = 0; i < 1000; ++i) plaintext.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(ctr_decrypt(key, ctr_encrypt(key, nonce, plaintext)), plaintext);
}

TEST(CipherTest, EmptyPlaintext) {
  const Bytes key = to_bytes("key");
  const auto enc = ctr_encrypt(key, to_bytes("nonce"), {});
  EXPECT_TRUE(enc.ciphertext.empty());
  EXPECT_TRUE(ctr_decrypt(key, enc).empty());
}

// ---------------------------------------------------------------------
// Key pairs, signatures, trust store
// ---------------------------------------------------------------------

TEST(KeysTest, DeterministicGeneration) {
  const KeyPair a = KeyPair::generate("seed-1");
  const KeyPair b = KeyPair::generate("seed-1");
  const KeyPair c = KeyPair::generate("seed-2");
  EXPECT_EQ(a.public_key(), b.public_key());
  EXPECT_NE(a.public_key(), c.public_key());
}

TEST(KeysTest, SignatureVerifies) {
  const KeyPair key = KeyPair::generate("signer");
  const Signature sig = sign(key, "the message");
  EXPECT_TRUE(verify_signature("the message", sig));
}

TEST(KeysTest, TamperedMessageFails) {
  const KeyPair key = KeyPair::generate("signer");
  const Signature sig = sign(key, "the message");
  EXPECT_FALSE(verify_signature("the message!", sig));
}

TEST(KeysTest, TamperedTagFails) {
  const KeyPair key = KeyPair::generate("signer");
  Signature sig = sign(key, "the message");
  sig.tag[0] ^= 0x01;
  EXPECT_FALSE(verify_signature("the message", sig));
}

TEST(KeysTest, UnknownKeyIdFails) {
  const KeyPair key = KeyPair::generate("signer");
  Signature sig = sign(key, "m");
  sig.key_id = "not-a-registered-key";
  EXPECT_FALSE(verify_signature("m", sig));
}

TEST(TrustStoreTest, RejectsValidSignatureFromUntrustedKey) {
  const KeyPair trusted = KeyPair::generate("trusted");
  const KeyPair stranger = KeyPair::generate("stranger");
  TrustStore store;
  store.add_trusted_key(trusted);

  EXPECT_TRUE(store.verify("msg", sign(trusted, "msg")));
  // The stranger's signature is cryptographically valid...
  EXPECT_TRUE(verify_signature("msg", sign(stranger, "msg")));
  // ...but policy says no.
  EXPECT_FALSE(store.verify("msg", sign(stranger, "msg")));
}

TEST(TrustStoreTest, RemoveTrustedKey) {
  const KeyPair key = KeyPair::generate("k");
  TrustStore store;
  store.add_trusted_key(key);
  EXPECT_TRUE(store.verify("m", sign(key, "m")));
  store.remove_trusted_key(key.public_key().key_id);
  EXPECT_FALSE(store.verify("m", sign(key, "m")));
}

// ---------------------------------------------------------------------
// Certificates and chains
// ---------------------------------------------------------------------

class ChainTest : public ::testing::Test {
 protected:
  ChainTest()
      : root_("cn=root-ca", "root-seed"),
        intermediate_("cn=intermediate-ca", "intermediate-seed"),
        subject_key_(KeyPair::generate("subject-key")) {
    anchors_.add_trusted_key(root_.key());
  }

  /// Chain: leaf <- intermediate <- root.
  std::vector<Certificate> make_chain(common::TimePoint nb, common::TimePoint na) {
    const Certificate leaf = intermediate_.issue("cn=service", subject_key_.public_key(), nb, na);
    const Certificate mid = root_.issue_ca(intermediate_, nb, na);
    const Certificate top = root_.root_certificate(nb, na);
    return {leaf, mid, top};
  }

  CertificateAuthority root_;
  CertificateAuthority intermediate_;
  KeyPair subject_key_;
  TrustStore anchors_;
};

TEST_F(ChainTest, ValidChain) {
  const auto chain = make_chain(0, 1000);
  EXPECT_EQ(validate_chain(chain, anchors_, {}, 500), ChainStatus::kValid);
}

TEST_F(ChainTest, ExpiredCertificate) {
  const auto chain = make_chain(0, 1000);
  EXPECT_EQ(validate_chain(chain, anchors_, {}, 1500), ChainStatus::kExpired);
}

TEST_F(ChainTest, NotYetValidCertificate) {
  const auto chain = make_chain(100, 1000);
  EXPECT_EQ(validate_chain(chain, anchors_, {}, 50), ChainStatus::kNotYetValid);
}

TEST_F(ChainTest, RevokedCertificate) {
  const auto chain = make_chain(0, 1000);
  EXPECT_EQ(validate_chain(chain, anchors_, {chain[0].serial}, 500),
            ChainStatus::kRevoked);
}

TEST_F(ChainTest, TamperedCertificateFails) {
  auto chain = make_chain(0, 1000);
  chain[0].subject = "cn=attacker";
  EXPECT_EQ(validate_chain(chain, anchors_, {}, 500), ChainStatus::kBadSignature);
}

TEST_F(ChainTest, UntrustedRootFails) {
  const auto chain = make_chain(0, 1000);
  TrustStore empty_anchors;
  EXPECT_EQ(validate_chain(chain, empty_anchors, {}, 500),
            ChainStatus::kUntrustedAnchor);
}

TEST_F(ChainTest, BrokenLinkageFails) {
  auto chain = make_chain(0, 1000);
  // Remove the intermediate: leaf's issuer no longer matches the root.
  chain.erase(chain.begin() + 1);
  EXPECT_EQ(validate_chain(chain, anchors_, {}, 500), ChainStatus::kBrokenChain);
}

TEST_F(ChainTest, EmptyChainIsBroken) {
  EXPECT_EQ(validate_chain({}, anchors_, {}, 0), ChainStatus::kBrokenChain);
}

TEST_F(ChainTest, SelfSignedLeafTrustedDirectly) {
  // A root certificate alone is a valid chain if anchored.
  const Certificate top = root_.root_certificate(0, 1000);
  EXPECT_EQ(validate_chain({top}, anchors_, {}, 500), ChainStatus::kValid);
}

}  // namespace
}  // namespace mdac::crypto
