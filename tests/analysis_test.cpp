#include <gtest/gtest.h>

#include <random>

#include "analysis/analysis.hpp"
#include "workload.hpp"
#include "core/functions.hpp"

namespace mdac::analysis {
namespace {

core::Policy make_policy(const std::string& id, core::Effect effect,
                         const std::string& subject, const std::string& resource,
                         const std::string& action) {
  core::Policy p;
  p.policy_id = id;
  if (!resource.empty()) {
    p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                          core::AttributeValue(resource));
  }
  core::Rule r;
  r.id = id + "-rule";
  r.effect = effect;
  core::Target t;
  if (!subject.empty()) {
    t.require(core::Category::kSubject, core::attrs::kSubjectId,
              core::AttributeValue(subject));
  }
  if (!action.empty()) {
    t.require(core::Category::kAction, core::attrs::kActionId,
              core::AttributeValue(action));
  }
  if (!t.empty()) r.target = std::move(t);
  p.rules.push_back(std::move(r));
  return p;
}

core::Rule make_rule(const std::string& id, core::Effect effect) {
  core::Rule r;
  r.id = id;
  r.effect = effect;
  return r;
}

std::vector<const Finding*> findings_with_code(const AnalysisReport& report,
                                               const std::string& code) {
  std::vector<const Finding*> out;
  for (const Finding& f : report.findings) {
    if (f.code == code) out.push_back(&f);
  }
  return out;
}

// ---------------------------------------------------------------------
// Atom extraction (migrated from the retired conflict_test.cpp)
// ---------------------------------------------------------------------

TEST(AtomExtractionTest, PolicyTargetIntersectedIntoRules) {
  const core::Policy p = make_policy("p", core::Effect::kPermit, "alice", "doc", "read");
  const auto atoms = extract_atoms(p);
  ASSERT_EQ(atoms.size(), 1u);
  const Atom& a = atoms[0];
  EXPECT_FALSE(a.approximate);
  EXPECT_TRUE(a.exact_target);
  const AttributeKey res{core::Category::kResource, core::attrs::kResourceId};
  const AttributeKey subj{core::Category::kSubject, core::attrs::kSubjectId};
  ASSERT_TRUE(a.constraints.count(res));
  EXPECT_TRUE(a.constraints.at(res).count("doc"));
  EXPECT_TRUE(a.constraints.at(subj).count("alice"));
}

TEST(AtomExtractionTest, ConditionMakesAtomApproximate) {
  core::Policy p = make_policy("p", core::Effect::kPermit, "", "doc", "");
  p.rules[0].condition = core::lit(true);
  const auto atoms = extract_atoms(p);
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_TRUE(atoms[0].approximate);
}

TEST(AtomExtractionTest, NonEqualityMatchMakesAtomApproximate) {
  core::Policy p;
  p.policy_id = "p";
  core::AnyOf any;
  core::AllOf all;
  core::Match m;
  m.function_id = "string-starts-with";
  m.literal = core::AttributeValue("adm");
  m.category = core::Category::kSubject;
  m.attribute_id = core::attrs::kSubjectId;
  all.matches.push_back(std::move(m));
  any.all_ofs.push_back(std::move(all));
  p.target_spec.any_ofs.push_back(std::move(any));
  p.rules.push_back(make_rule("r", core::Effect::kDeny));

  const auto atoms = extract_atoms(p);
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_TRUE(atoms[0].approximate);
}

TEST(AtomExtractionTest, ContradictoryTargetDropsAtom) {
  // Policy target requires resource=a AND rule target requires resource=b:
  // the rule can never apply, so no atom is produced.
  core::Policy p = make_policy("p", core::Effect::kPermit, "", "a", "");
  core::Target rule_target;
  rule_target.require(core::Category::kResource, core::attrs::kResourceId,
                      core::AttributeValue("b"));
  p.rules[0].target = std::move(rule_target);
  EXPECT_TRUE(extract_atoms(p).empty());
}

// Regression for the bug the port fixed: the policy-level target must
// survive into the atom even when the rule has no target of its own AND
// the atom is approximate (condition / non-equality structure). Dropping
// it would turn "deny everything on doc when <cond>" into "deny
// everything everywhere", flooding the conflict pass.
TEST(AtomExtractionTest, PolicyTargetSurvivesIntoApproximateAtoms) {
  core::Policy p = make_policy("p", core::Effect::kDeny, "", "doc", "");
  p.rules[0].condition = core::lit(true);  // rule has no target of its own
  const auto atoms = extract_atoms(p);
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_TRUE(atoms[0].approximate);
  const AttributeKey res{core::Category::kResource, core::attrs::kResourceId};
  ASSERT_TRUE(atoms[0].constraints.count(res));
  EXPECT_TRUE(atoms[0].constraints.at(res).count("doc"));
}

TEST(AtomExtractionTest, SetTargetsIntersectDownTheTree) {
  core::PolicySet set;
  set.policy_set_id = "set";
  set.target_spec.require(core::Category::kResource, core::attrs::kResourceDomain,
                          core::AttributeValue("domain-1"));
  set.add(make_policy("p", core::Effect::kPermit, "alice", "doc", "read"));
  const auto atoms = extract_atoms(set);
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_EQ(atoms[0].root_id, "set");
  EXPECT_EQ(atoms[0].path, "set/p/p-rule");
  const AttributeKey dom{core::Category::kResource, core::attrs::kResourceDomain};
  ASSERT_TRUE(atoms[0].constraints.count(dom));
  EXPECT_TRUE(atoms[0].constraints.at(dom).count("domain-1"));
}

// ---------------------------------------------------------------------
// Modality conflicts (legacy flat API, migrated)
// ---------------------------------------------------------------------

TEST(ModalityConflictTest, OppositeEffectsSameTupleConflict) {
  const core::Policy permit = make_policy("permit", core::Effect::kPermit,
                                          "alice", "doc", "read");
  const core::Policy deny = make_policy("deny", core::Effect::kDeny,
                                        "alice", "doc", "read");
  const AnalysisResult result = analyse({&permit, &deny});
  ASSERT_EQ(result.conflicts.size(), 1u);
  const Conflict& c = result.conflicts[0];
  EXPECT_EQ(result.atoms[c.permit_index].policy_id, "permit");
  EXPECT_EQ(result.atoms[c.deny_index].policy_id, "deny");
  EXPECT_FALSE(c.approximate);
  // Witness includes a concrete value for every constrained attribute.
  const AttributeKey subj{core::Category::kSubject, core::attrs::kSubjectId};
  EXPECT_EQ(c.witness.at(subj), "alice");
}

TEST(ModalityConflictTest, DisjointSubjectsDoNotConflict) {
  const core::Policy permit = make_policy("permit", core::Effect::kPermit,
                                          "alice", "doc", "read");
  const core::Policy deny = make_policy("deny", core::Effect::kDeny,
                                        "bob", "doc", "read");
  EXPECT_TRUE(analyse({&permit, &deny}).conflicts.empty());
}

TEST(ModalityConflictTest, DisjointResourcesDoNotConflict) {
  const core::Policy permit = make_policy("permit", core::Effect::kPermit,
                                          "alice", "doc-1", "read");
  const core::Policy deny = make_policy("deny", core::Effect::kDeny,
                                        "alice", "doc-2", "read");
  EXPECT_TRUE(analyse({&permit, &deny}).conflicts.empty());
}

TEST(ModalityConflictTest, UnconstrainedAttributeOverlapsEverything) {
  // Deny for everyone on doc vs permit for alice on doc: conflict.
  const core::Policy permit = make_policy("permit", core::Effect::kPermit,
                                          "alice", "doc", "");
  const core::Policy deny = make_policy("deny", core::Effect::kDeny, "", "doc", "");
  const AnalysisResult result = analyse({&permit, &deny});
  EXPECT_EQ(result.conflicts.size(), 1u);
}

TEST(ModalityConflictTest, SameEffectNeverConflicts) {
  const core::Policy a = make_policy("a", core::Effect::kPermit, "alice", "doc", "read");
  const core::Policy b = make_policy("b", core::Effect::kPermit, "alice", "doc", "read");
  EXPECT_TRUE(analyse({&a, &b}).conflicts.empty());
}

TEST(ModalityConflictTest, ApproximateAtomsFlaggedInConflicts) {
  core::Policy permit = make_policy("permit", core::Effect::kPermit, "", "doc", "");
  permit.rules[0].condition = core::lit(true);
  const core::Policy deny = make_policy("deny", core::Effect::kDeny, "", "doc", "");
  const AnalysisResult result = analyse({&permit, &deny});
  ASSERT_EQ(result.conflicts.size(), 1u);
  EXPECT_TRUE(result.conflicts[0].approximate);
}

// ---------------------------------------------------------------------
// Property test: the analysis agrees with a brute-force PDP oracle on
// the equality fragment (migrated).
// ---------------------------------------------------------------------

class ConflictOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConflictOracleSweep, AnalysisMatchesBruteForceOracle) {
  // Generate a random set of single-rule policies over small domains and
  // cross-check: a (permit, deny) atom pair conflicts iff some concrete
  // (subject, resource, action) triple makes both rules applicable.
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const std::vector<std::string> subjects{"s1", "s2", ""};
  const std::vector<std::string> resources{"r1", "r2", ""};
  const std::vector<std::string> actions{"read", "write", ""};

  std::vector<core::Policy> policies;
  for (int i = 0; i < 6; ++i) {
    policies.push_back(make_policy(
        "p" + std::to_string(i),
        rng() % 2 == 0 ? core::Effect::kPermit : core::Effect::kDeny,
        subjects[rng() % subjects.size()], resources[rng() % resources.size()],
        actions[rng() % actions.size()]));
  }
  std::vector<const core::Policy*> pointers;
  for (const auto& p : policies) pointers.push_back(&p);
  const AnalysisResult result = analyse(pointers);

  // Oracle: evaluate every policy against every concrete triple.
  const std::vector<std::string> concrete_subjects{"s1", "s2", "other"};
  const std::vector<std::string> concrete_resources{"r1", "r2", "other"};
  const std::vector<std::string> concrete_actions{"read", "write", "other"};
  std::set<std::pair<std::string, std::string>> oracle_conflicts;
  for (const auto& s : concrete_subjects) {
    for (const auto& r : concrete_resources) {
      for (const auto& a : concrete_actions) {
        const auto req = core::RequestContext::make(s, r, a);
        std::vector<const core::Policy*> permits, denies;
        for (const auto& p : policies) {
          core::EvaluationContext ctx(req, core::FunctionRegistry::standard());
          const core::Decision d = p.evaluate(ctx);
          if (d.is_permit()) permits.push_back(&p);
          if (d.is_deny()) denies.push_back(&p);
        }
        for (const auto* p : permits) {
          for (const auto* d : denies) {
            oracle_conflicts.insert({p->policy_id, d->policy_id});
          }
        }
      }
    }
  }

  std::set<std::pair<std::string, std::string>> analysis_conflicts;
  for (const Conflict& c : result.conflicts) {
    analysis_conflicts.insert({result.atoms[c.permit_index].policy_id,
                               result.atoms[c.deny_index].policy_id});
  }
  EXPECT_EQ(analysis_conflicts, oracle_conflicts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictOracleSweep, ::testing::Range(0, 30));

// ---------------------------------------------------------------------
// SoD meta-policies (migrated)
// ---------------------------------------------------------------------

TEST(SodTest, DetectsSubjectGrantedBothHalves) {
  const core::Policy submit = make_policy("submit", core::Effect::kPermit,
                                          "alice", "purchase-order", "submit");
  const core::Policy approve = make_policy("approve", core::Effect::kPermit,
                                           "alice", "purchase-order", "approve");
  const AnalysisResult result = analyse({&submit, &approve});

  const std::vector<SodMetaPolicy> metas{
      {"submit-vs-approve", "purchase-order", "submit", "purchase-order", "approve"}};
  const auto violations = check_sod(result.atoms, metas);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_TRUE(violations[0].overlapping_subjects.count("alice"));
}

TEST(SodTest, DifferentSubjectsAreFine) {
  const core::Policy submit = make_policy("submit", core::Effect::kPermit,
                                          "alice", "purchase-order", "submit");
  const core::Policy approve = make_policy("approve", core::Effect::kPermit,
                                           "bob", "purchase-order", "approve");
  const AnalysisResult result = analyse({&submit, &approve});
  const std::vector<SodMetaPolicy> metas{
      {"sod", "purchase-order", "submit", "purchase-order", "approve"}};
  EXPECT_TRUE(check_sod(result.atoms, metas).empty());
}

TEST(SodTest, UnconstrainedSubjectViolates) {
  // A permit-to-everyone on both halves violates for any subject.
  const core::Policy submit = make_policy("submit", core::Effect::kPermit, "",
                                          "purchase-order", "submit");
  const core::Policy approve = make_policy("approve", core::Effect::kPermit, "",
                                           "purchase-order", "approve");
  const AnalysisResult result = analyse({&submit, &approve});
  const std::vector<SodMetaPolicy> metas{
      {"sod", "purchase-order", "submit", "purchase-order", "approve"}};
  const auto violations = check_sod(result.atoms, metas);
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(violations[0].overlapping_subjects.empty());  // "any subject"
}

TEST(SodTest, DenyAtomsDoNotTriggerSod) {
  const core::Policy submit = make_policy("submit", core::Effect::kDeny,
                                          "alice", "purchase-order", "submit");
  const core::Policy approve = make_policy("approve", core::Effect::kPermit,
                                           "alice", "purchase-order", "approve");
  const AnalysisResult result = analyse({&submit, &approve});
  const std::vector<SodMetaPolicy> metas{
      {"sod", "purchase-order", "submit", "purchase-order", "approve"}};
  EXPECT_TRUE(check_sod(result.atoms, metas).empty());
}

// ---------------------------------------------------------------------
// Linter: shadowing pass
// ---------------------------------------------------------------------

TEST(ShadowingTest, FirstApplicableCatchAllShadowsLaterRules) {
  core::Policy p = make_policy("p", core::Effect::kPermit, "", "doc", "");
  p.rule_combining = "first-applicable";
  // p-rule has no target: an unconditional catch-all. Anything after it
  // is unreachable — even rules with conditions or odd targets.
  core::Rule late = make_rule("late", core::Effect::kDeny);
  late.condition = core::lit(true);
  p.rules.push_back(std::move(late));

  const AnalysisReport report = analyse_roots({{&p, nullptr}});
  const auto shadowed = findings_with_code(report, "rule-shadowed");
  ASSERT_EQ(shadowed.size(), 1u);
  EXPECT_EQ(shadowed[0]->path, "p/late");
  EXPECT_EQ(shadowed[0]->other_path, "p/p-rule");
  EXPECT_TRUE(is_unreachability_code(shadowed[0]->code));
}

TEST(ShadowingTest, FirstApplicableBroaderEarlierRuleShadows) {
  core::Policy p;
  p.policy_id = "p";
  p.rule_combining = "first-applicable";
  core::Rule broad = make_rule("broad", core::Effect::kPermit);
  core::Target bt;
  bt.require(core::Category::kResource, core::attrs::kResourceId,
             core::AttributeValue("doc"));
  broad.target = std::move(bt);
  p.rules.push_back(std::move(broad));
  core::Rule narrow = make_rule("narrow", core::Effect::kDeny);
  core::Target nt;
  nt.require(core::Category::kResource, core::attrs::kResourceId,
             core::AttributeValue("doc"));
  nt.require(core::Category::kAction, core::attrs::kActionId,
             core::AttributeValue("read"));
  narrow.target = std::move(nt);
  p.rules.push_back(std::move(narrow));

  const AnalysisReport report = analyse_roots({{&p, nullptr}});
  const auto shadowed = findings_with_code(report, "rule-shadowed");
  ASSERT_EQ(shadowed.size(), 1u);
  EXPECT_EQ(shadowed[0]->path, "p/narrow");
}

TEST(ShadowingTest, ConditionedEarlierRuleDoesNotShadow) {
  core::Policy p = make_policy("p", core::Effect::kPermit, "", "doc", "");
  p.rule_combining = "first-applicable";
  p.rules[0].condition = core::lit(true);  // may NotApply at runtime
  p.rules.push_back(make_rule("late", core::Effect::kDeny));

  const AnalysisReport report = analyse_roots({{&p, nullptr}});
  EXPECT_TRUE(findings_with_code(report, "rule-shadowed").empty());
}

TEST(ShadowingTest, ApproximateCandidateNotFlaggedUnderConstrainedCoverer) {
  // The coverer admits only resource=doc; the candidate's non-equality
  // match could go Indeterminate on requests outside that space, so
  // removing it is not provably decision-invariant.
  core::Policy p;
  p.policy_id = "p";
  p.rule_combining = "first-applicable";
  core::Rule cov = make_rule("cov", core::Effect::kPermit);
  core::Target ct;
  ct.require(core::Category::kResource, core::attrs::kResourceId,
             core::AttributeValue("doc"));
  cov.target = std::move(ct);
  p.rules.push_back(std::move(cov));
  core::Rule cand = make_rule("cand", core::Effect::kDeny);
  core::Target xt;
  xt.require(core::Category::kResource, core::attrs::kResourceId,
             core::AttributeValue("doc"));
  core::AnyOf any;
  core::AllOf all;
  core::Match m;
  m.function_id = "string-starts-with";
  m.literal = core::AttributeValue("adm");
  m.category = core::Category::kSubject;
  m.attribute_id = core::attrs::kSubjectId;
  m.must_be_present = true;
  all.matches.push_back(std::move(m));
  any.all_ofs.push_back(std::move(all));
  xt.any_ofs.push_back(std::move(any));
  cand.target = std::move(xt);
  p.rules.push_back(std::move(cand));

  const AnalysisReport report = analyse_roots({{&p, nullptr}});
  EXPECT_TRUE(findings_with_code(report, "rule-shadowed").empty());
}

TEST(ShadowingTest, DenyOverridesUnconditionalDenyShadowsPermit) {
  core::Policy p;
  p.policy_id = "p";
  p.rule_combining = "deny-overrides";
  core::Rule permit = make_rule("permit-read", core::Effect::kPermit);
  core::Target pt;
  pt.require(core::Category::kResource, core::attrs::kResourceId,
             core::AttributeValue("doc"));
  permit.target = std::move(pt);
  p.rules.push_back(std::move(permit));
  core::Rule deny = make_rule("deny-doc", core::Effect::kDeny);
  core::Target dt;
  dt.require(core::Category::kResource, core::attrs::kResourceId,
             core::AttributeValue("doc"));
  deny.target = std::move(dt);
  p.rules.push_back(std::move(deny));  // later position still overrides

  const AnalysisReport report = analyse_roots({{&p, nullptr}});
  const auto shadowed = findings_with_code(report, "rule-shadowed");
  ASSERT_EQ(shadowed.size(), 1u);
  EXPECT_EQ(shadowed[0]->path, "p/permit-read");
  EXPECT_EQ(shadowed[0]->other_path, "p/deny-doc");
}

TEST(ShadowingTest, FirstApplicableSetShadowsLaterSibling) {
  core::PolicySet set;
  set.policy_set_id = "set";
  set.policy_combining = "first-applicable";
  // Child 1 decides every doc request (exact target + catch-all rule).
  core::Policy first = make_policy("first", core::Effect::kPermit, "", "doc", "");
  set.add(std::move(first));
  // Child 2 only admits doc requests: unreachable.
  core::Policy second = make_policy("second", core::Effect::kDeny, "", "doc", "");
  set.add(std::move(second));

  const AnalysisReport report = analyse_roots({{&set, nullptr}});
  const auto shadowed = findings_with_code(report, "policy-shadowed");
  ASSERT_EQ(shadowed.size(), 1u);
  EXPECT_EQ(shadowed[0]->path, "set/second");
  EXPECT_EQ(shadowed[0]->other_path, "set/first");
  EXPECT_TRUE(is_unreachability_code(shadowed[0]->code));
}

TEST(ShadowingTest, DenyOverridesSetDoesNotShadowSiblings) {
  core::PolicySet set;
  set.policy_set_id = "set";
  set.policy_combining = "deny-overrides";
  set.add(make_policy("first", core::Effect::kPermit, "", "doc", ""));
  set.add(make_policy("second", core::Effect::kDeny, "", "doc", ""));
  const AnalysisReport report = analyse_roots({{&set, nullptr}});
  EXPECT_TRUE(findings_with_code(report, "policy-shadowed").empty());
}

// ---------------------------------------------------------------------
// Linter: conflict pass (cross-root only + only-one-applicable)
// ---------------------------------------------------------------------

TEST(LintConflictTest, CrossRootConflictIsAnError) {
  const core::Policy permit = make_policy("permit", core::Effect::kPermit,
                                          "alice", "doc", "read");
  const core::Policy deny = make_policy("deny", core::Effect::kDeny,
                                        "alice", "doc", "read");
  const AnalysisReport report = analyse_roots({{&permit, nullptr}, {&deny, nullptr}});
  const auto conflicts = findings_with_code(report, "modality-conflict");
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0]->severity, Severity::kError);
  EXPECT_FALSE(conflicts[0]->approximate);
  EXPECT_FALSE(report.ok());
  const AttributeKey subj{core::Category::kSubject, core::attrs::kSubjectId};
  EXPECT_EQ(conflicts[0]->witness.at(subj), "alice");
}

TEST(LintConflictTest, ApproximateConflictIsAWarning) {
  core::Policy permit = make_policy("permit", core::Effect::kPermit, "", "doc", "");
  permit.rules[0].condition = core::lit(true);
  const core::Policy deny = make_policy("deny", core::Effect::kDeny, "", "doc", "");
  core::Policy permit_frozen = std::move(permit);
  const AnalysisReport report =
      analyse_roots({{&permit_frozen, nullptr}, {&deny, nullptr}});
  const auto conflicts = findings_with_code(report, "modality-conflict");
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0]->severity, Severity::kWarning);
  EXPECT_TRUE(conflicts[0]->approximate);
  EXPECT_TRUE(report.ok());  // warnings never gate
}

TEST(LintConflictTest, WithinTreeOverlapIsNotAConflict) {
  // Inside one tree the combining algorithm resolves the disagreement
  // deterministically — the permit/deny pair must NOT be reported.
  core::PolicySet set;
  set.policy_set_id = "set";
  set.policy_combining = "deny-overrides";
  set.add(make_policy("permit", core::Effect::kPermit, "alice", "doc", "read"));
  set.add(make_policy("deny", core::Effect::kDeny, "alice", "doc", "read"));
  const AnalysisReport report = analyse_roots({{&set, nullptr}});
  EXPECT_TRUE(findings_with_code(report, "modality-conflict").empty());
}

TEST(LintConflictTest, OnlyOneApplicableOverlapReported) {
  core::PolicySet set;
  set.policy_set_id = "set";
  set.policy_combining = "only-one-applicable";
  set.add(make_policy("a", core::Effect::kPermit, "", "doc", ""));
  set.add(make_policy("b", core::Effect::kDeny, "", "doc", ""));
  const AnalysisReport report = analyse_roots({{&set, nullptr}});
  const auto overlaps = findings_with_code(report, "only-one-applicable-overlap");
  ASSERT_EQ(overlaps.size(), 1u);
  EXPECT_EQ(overlaps[0]->severity, Severity::kError);
}

TEST(LintConflictTest, OnlyOneApplicableDisjointChildrenAreFine) {
  core::PolicySet set;
  set.policy_set_id = "set";
  set.policy_combining = "only-one-applicable";
  set.add(make_policy("a", core::Effect::kPermit, "", "doc-1", ""));
  set.add(make_policy("b", core::Effect::kDeny, "", "doc-2", ""));
  const AnalysisReport report = analyse_roots({{&set, nullptr}});
  EXPECT_TRUE(findings_with_code(report, "only-one-applicable-overlap").empty());
}

// ---------------------------------------------------------------------
// Linter: reference pass
// ---------------------------------------------------------------------

TEST(ReferenceTest, DanglingReferenceIsAnError) {
  core::PolicySet set;
  set.policy_set_id = "set";
  set.add_reference("no-such-policy");
  const AnalysisReport report = analyse_roots({{&set, nullptr}});
  const auto dangling = findings_with_code(report, "reference-dangling");
  ASSERT_EQ(dangling.size(), 1u);
  EXPECT_EQ(dangling[0]->severity, Severity::kError);
  EXPECT_EQ(dangling[0]->other_root_id, "no-such-policy");
}

TEST(ReferenceTest, WithdrawnReferentIsDistinguished) {
  core::PolicySet set;
  set.policy_set_id = "set";
  set.add_reference("old-policy");
  AnalyzerOptions options;
  options.resolves = [](const std::string&) { return false; };
  options.withdrawn = [](const std::string& id) { return id == "old-policy"; };
  const AnalysisReport report = analyse_roots({{&set, nullptr}}, options);
  ASSERT_EQ(findings_with_code(report, "reference-withdrawn").size(), 1u);
  EXPECT_TRUE(findings_with_code(report, "reference-dangling").empty());
}

TEST(ReferenceTest, ReferenceCycleIsAnError) {
  core::PolicySet a;
  a.policy_set_id = "set-a";
  a.add_reference("set-b");
  core::PolicySet b;
  b.policy_set_id = "set-b";
  b.add_reference("set-a");
  const AnalysisReport report = analyse_roots({{&a, nullptr}, {&b, nullptr}});
  const auto cycles = findings_with_code(report, "reference-cycle");
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0]->severity, Severity::kError);
}

TEST(ReferenceTest, ResolvableAcyclicReferencesAreClean) {
  core::PolicySet set;
  set.policy_set_id = "set";
  set.add_reference("leaf");
  const core::Policy leaf = make_policy("leaf", core::Effect::kPermit, "", "doc", "");
  const AnalysisReport report = analyse_roots({{&set, nullptr}, {&leaf, nullptr}});
  EXPECT_TRUE(findings_with_code(report, "reference-dangling").empty());
  EXPECT_TRUE(findings_with_code(report, "reference-cycle").empty());
}

// ---------------------------------------------------------------------
// Linter: types + vocabulary + dead code
// ---------------------------------------------------------------------

TEST(TypesTest, UnknownConditionFunctionIsAnError) {
  core::Policy p = make_policy("p", core::Effect::kPermit, "", "doc", "");
  p.rules[0].condition = core::make_apply("no-such-function", core::lit(true));
  const AnalysisReport report = analyse_roots({{&p, nullptr}});
  ASSERT_EQ(findings_with_code(report, "unknown-function").size(), 1u);
  EXPECT_FALSE(report.ok());
}

TEST(TypesTest, ArityMismatchIsAnError) {
  core::Policy p = make_policy("p", core::Effect::kPermit, "", "doc", "");
  p.rules[0].condition = core::make_apply("not", core::lit(true), core::lit(true));
  const AnalysisReport report = analyse_roots({{&p, nullptr}});
  ASSERT_EQ(findings_with_code(report, "function-arity").size(), 1u);
}

TEST(TypesTest, UnknownCombiningAlgorithmIsAnError) {
  core::Policy p = make_policy("p", core::Effect::kPermit, "", "doc", "");
  p.rule_combining = "majority-vote";
  const AnalysisReport report = analyse_roots({{&p, nullptr}});
  ASSERT_EQ(findings_with_code(report, "unknown-combining-algorithm").size(), 1u);
}

TEST(TypesTest, UnknownMatchFunctionIsAnError) {
  core::Policy p;
  p.policy_id = "p";
  core::AnyOf any;
  core::AllOf all;
  core::Match m;
  m.function_id = "fuzzy-match";
  m.literal = core::AttributeValue("doc");
  m.category = core::Category::kResource;
  m.attribute_id = core::attrs::kResourceId;
  all.matches.push_back(std::move(m));
  any.all_ofs.push_back(std::move(all));
  p.target_spec.any_ofs.push_back(std::move(any));
  p.rules.push_back(make_rule("r", core::Effect::kPermit));
  const AnalysisReport report = analyse_roots({{&p, nullptr}});
  ASSERT_EQ(findings_with_code(report, "unknown-match-function").size(), 1u);
}

TEST(VocabularyTest, UnknownAttributeIsAWarning) {
  core::Policy p = make_policy("p", core::Effect::kPermit, "", "doc", "");
  core::Target t;
  t.require(core::Category::kSubject, "clearance-level",
            core::AttributeValue("secret"));
  p.rules[0].target = std::move(t);
  const std::set<std::string, std::less<>> vocabulary{
      core::attrs::kSubjectId, core::attrs::kResourceId, core::attrs::kActionId};
  AnalyzerOptions options;
  options.vocabulary = &vocabulary;
  const AnalysisReport report = analyse_roots({{&p, nullptr}}, options);
  const auto unknown = findings_with_code(report, "unknown-attribute");
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0]->severity, Severity::kWarning);
  EXPECT_NE(unknown[0]->message.find("clearance-level"), std::string::npos);
}

TEST(DeadCodeTest, ConstantFalseConditionIsDeadCode) {
  core::Policy p = make_policy("p", core::Effect::kPermit, "", "doc", "");
  p.rules[0].condition = core::lit(false);
  const AnalysisReport report = analyse_roots({{&p, nullptr}});
  const auto dead = findings_with_code(report, "condition-always-false");
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0]->severity, Severity::kWarning);
  EXPECT_TRUE(is_unreachability_code(dead[0]->code));
}

TEST(DeadCodeTest, ConstantTrueConditionIsRedundant) {
  core::Policy p = make_policy("p", core::Effect::kPermit, "", "doc", "");
  p.rules[0].condition = core::make_apply("not", core::lit(false));
  const AnalysisReport report = analyse_roots({{&p, nullptr}});
  const auto redundant = findings_with_code(report, "condition-always-true");
  ASSERT_EQ(redundant.size(), 1u);
  EXPECT_EQ(redundant[0]->severity, Severity::kInfo);
}

TEST(DeadCodeTest, DesignatorConditionIsNotFolded) {
  core::Policy p = make_policy("p", core::Effect::kPermit, "", "doc", "");
  p.rules[0].condition = core::make_apply(
      "string-equal",
      core::designator(core::Category::kSubject, core::attrs::kSubjectId,
                       core::DataType::kString),
      core::lit("alice"));
  const AnalysisReport report = analyse_roots({{&p, nullptr}});
  EXPECT_TRUE(findings_with_code(report, "condition-always-false").empty());
  EXPECT_TRUE(findings_with_code(report, "condition-always-true").empty());
}

TEST(DeadCodeTest, ContradictoryExactTargetIsNeverApplicable) {
  core::Policy p = make_policy("p", core::Effect::kPermit, "", "a", "");
  core::Target t;
  t.require(core::Category::kResource, core::attrs::kResourceId,
            core::AttributeValue("b"));
  p.rules[0].target = std::move(t);
  const AnalysisReport report = analyse_roots({{&p, nullptr}});
  const auto dead = findings_with_code(report, "rule-never-applicable");
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_TRUE(is_unreachability_code(dead[0]->code));
}

// ---------------------------------------------------------------------
// Linter: report caps + store entry point
// ---------------------------------------------------------------------

TEST(ReportCapTest, SeverityCountsStayExactPastTheCap) {
  // Three cross-root exact conflicts but a cap of one materialised
  // finding per pass: error_count still reports all three.
  const core::Policy d1 = make_policy("d1", core::Effect::kDeny, "alice", "doc", "read");
  const core::Policy d2 = make_policy("d2", core::Effect::kDeny, "alice", "doc", "read");
  const core::Policy d3 = make_policy("d3", core::Effect::kDeny, "alice", "doc", "read");
  const core::Policy permit = make_policy("permit", core::Effect::kPermit,
                                          "alice", "doc", "read");
  AnalyzerOptions options;
  options.max_findings_per_pass = 1;
  const AnalysisReport report = analyse_roots(
      {{&permit, nullptr}, {&d1, nullptr}, {&d2, nullptr}, {&d3, nullptr}}, options);
  EXPECT_EQ(report.error_count, 3u);
  EXPECT_EQ(report.suppressed, 2u);
  EXPECT_EQ(findings_with_code(report, "modality-conflict").size(), 1u);
  EXPECT_EQ(findings_with_code(report, "findings-truncated").size(), 1u);
  EXPECT_FALSE(report.ok());
}

TEST(AnalyseStoreTest, ResolvesReferencesAgainstTheStore) {
  core::PolicyStore store;
  store.add(make_policy("leaf", core::Effect::kPermit, "", "doc", ""));
  core::PolicySet set;
  set.policy_set_id = "set";
  set.add_reference("leaf");
  set.add_reference("missing");
  store.add(std::move(set));
  const AnalysisReport report = analyse_store(store);
  const auto dangling = findings_with_code(report, "reference-dangling");
  ASSERT_EQ(dangling.size(), 1u);
  EXPECT_EQ(dangling[0]->other_root_id, "missing");
}

// ---------------------------------------------------------------------
// Scaling smoke: a 2k-policy domain-structured corpus lints in bounded
// time with capped materialisation and exact severity totals.
// ---------------------------------------------------------------------

TEST(ScalingTest, TwoThousandPolicyCorpusLints) {
  const auto store = bench::make_domain_policy_store(8, 2000, 3);
  AnalyzerOptions options;
  options.max_findings_per_pass = 100;
  const AnalysisReport report = analyse_store(*store, options);
  // The generated corpus has massive cross-root permit/deny overlap
  // (every same-domain same-role pair): counts stay exact, the
  // materialised list stays capped.
  EXPECT_GT(report.error_count, 1000u);
  EXPECT_LE(findings_with_code(report, "modality-conflict").size(), 100u);
  EXPECT_EQ(report.suppressed + 100u, report.error_count + report.warning_count);
  // No shadowing or dead-code noise on the generated shape.
  EXPECT_TRUE(findings_with_code(report, "rule-shadowed").empty());
  EXPECT_TRUE(findings_with_code(report, "rule-never-applicable").empty());
}

}  // namespace
}  // namespace mdac::analysis
