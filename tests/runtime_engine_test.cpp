// mdac::runtime::DecisionEngine — worker pool over snapshot-published
// policy state: differential correctness against the single-threaded
// Pdp, deterministic overload shedding, deadlines, drain/discard
// shutdown, the shared decision cache, metrics, and the PEP/service
// wiring. The concurrent-churn consistency suite lives in
// tests/runtime_churn_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "cache/decision_cache.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/pdp.hpp"
#include "core/serialization.hpp"
#include "dependability/replicated_pdp.hpp"
#include "obs/trace.hpp"
#include "net/sim.hpp"
#include "pep/pep.hpp"
#include "pep/remote.hpp"
#include "runtime/engine.hpp"
#include "runtime/snapshot.hpp"
#include "workload.hpp"

namespace mdac::runtime {
namespace {

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

/// An AttributeResolver whose resolutions block until opened — the test
/// lever that wedges engine workers inside an evaluation so queueing,
/// shedding and deadlines become observable. Thread-safe (the engine
/// contract for shared resolvers).
class GateResolver : public core::AttributeResolver {
 public:
  std::optional<core::Bag> resolve(core::Category /*category*/,
                                   const std::string& id,
                                   const core::RequestContext& /*request*/) override {
    if (id != "gate") return std::nullopt;
    std::unique_lock lock(mutex_);
    ++entered_;
    entered_cv_.notify_all();
    open_cv_.wait(lock, [this] { return open_; });
    return core::Bag(core::AttributeValue(true));
  }

  void open() {
    {
      std::lock_guard lock(mutex_);
      open_ = true;
    }
    open_cv_.notify_all();
  }

  /// Blocks the calling (test) thread until `n` resolutions are wedged.
  void wait_until_blocked(std::size_t n) {
    std::unique_lock lock(mutex_);
    entered_cv_.wait(lock, [&] { return entered_ >= n; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable open_cv_;
  std::condition_variable entered_cv_;
  bool open_ = false;
  std::size_t entered_ = 0;
};

/// A store whose single policy permits "read" only once the "gate"
/// environment attribute resolves true — every evaluation goes through
/// the resolver.
std::shared_ptr<core::PolicyStore> make_gated_store() {
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "gated";
  core::Rule r;
  r.id = "permit-when-open";
  r.effect = core::Effect::kPermit;
  r.condition = core::designator(core::Category::kEnvironment, "gate",
                                 core::DataType::kBoolean, /*must_be_present=*/true);
  p.rules.push_back(std::move(r));
  store->add(std::move(p));
  return store;
}

core::RequestContext probe_request() {
  return core::RequestContext::make("alice", "doc", "read");
}

/// Seeded federation workload shared with the bench harness: policies
/// split over `domains` administrative domains, single-domain traffic.
std::vector<core::RequestContext> federation_pool(int domains, int policies,
                                                  int roles, std::size_t n) {
  common::Rng rng(20260731);
  std::vector<core::RequestContext> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool.push_back(bench::random_domain_request(rng, domains, policies, roles));
  }
  return pool;
}

// ---------------------------------------------------------------------
// Snapshot publication
// ---------------------------------------------------------------------

TEST(SnapshotPublisherTest, VersionsAreMonotonicAndCurrentTracksLatest) {
  SnapshotPublisher publisher;
  EXPECT_EQ(publisher.current(), nullptr);
  EXPECT_EQ(publisher.current_version(), 0u);

  auto s1 = publisher.publish(bench::make_policy_store(4));
  auto s2 = publisher.publish(bench::make_policy_store(8));
  EXPECT_EQ(s1->version(), 1u);
  EXPECT_EQ(s2->version(), 2u);
  EXPECT_EQ(publisher.current_version(), 2u);
  EXPECT_EQ(publisher.current()->policy_count(), 8u);
  EXPECT_EQ(publisher.publications(), 2u);
  // The replaced snapshot stays alive for its holders (RCU grace).
  EXPECT_EQ(s1->policy_count(), 4u);
}

TEST(SnapshotPublisherTest, PublishFromRepositoryCarriesCompiledArtifacts) {
  common::ManualClock clock;
  pap::PolicyRepository repo(clock);
  core::Policy p;
  p.policy_id = "p1";
  core::Rule r;
  r.id = "permit-all";
  r.effect = core::Effect::kPermit;
  p.rules.push_back(std::move(r));
  ASSERT_TRUE(repo.submit(core::node_to_string(p), "author"));
  ASSERT_TRUE(repo.issue("p1", "admin"));

  SnapshotPublisher publisher;
  auto snapshot = publisher.publish_from(repo);
  EXPECT_EQ(snapshot->policy_count(), 1u);
  EXPECT_EQ(snapshot->source_revision(), repo.revision());
  // The snapshot's store shares the PAP's compile-on-issue artifact.
  EXPECT_EQ(snapshot->store()->compiled("p1"), repo.compiled("p1"));
}

// ---------------------------------------------------------------------
// Differential correctness: engine decisions == single-threaded Pdp
// ---------------------------------------------------------------------

TEST(DecisionEngineTest, DecisionsBitIdenticalToSingleThreadedPdp) {
  constexpr int kDomains = 4;
  constexpr int kPolicies = 64;
  constexpr int kRoles = 3;
  auto store = bench::make_domain_policy_store(kDomains, kPolicies, kRoles);
  const auto pool = federation_pool(kDomains, kPolicies, kRoles, 256);

  // Single-threaded reference decisions first (the store is shared with
  // the snapshot afterwards; both sides only read it).
  core::Pdp reference(store);
  std::vector<core::Decision> expected;
  expected.reserve(pool.size());
  for (const auto& request : pool) expected.push_back(reference.evaluate(request));

  SnapshotPublisher publisher;
  publisher.publish(store);
  EngineConfig config;
  config.workers = 4;
  config.queue_capacity = 1024;
  config.max_batch = 16;
  DecisionEngine engine(publisher, config);

  std::vector<std::future<EngineResult>> futures;
  futures.reserve(pool.size());
  for (const auto& request : pool) futures.push_back(engine.submit(request));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EngineResult result = futures[i].get();
    EXPECT_EQ(result.status, CompletionStatus::kDecided);
    EXPECT_EQ(result.snapshot_version, 1u);
    EXPECT_FALSE(result.cache_hit);
    // Bit-identical: type, extent, status text, obligations, advice.
    EXPECT_EQ(result.decision, expected[i]) << "request " << i;
  }

  engine.shutdown();
  const EngineMetrics::Snapshot m = engine.metrics();
  EXPECT_EQ(m.submitted, pool.size());
  EXPECT_EQ(m.decided, pool.size());
  EXPECT_EQ(m.sheds(), 0u);
  EXPECT_GE(m.snapshot_adoptions, 1u);
  EXPECT_GE(m.batches, 1u);
  std::uint64_t worker_total = 0;
  for (const std::uint64_t ops : m.worker_ops) worker_total += ops;
  EXPECT_EQ(worker_total, pool.size());
}

TEST(DecisionEngineTest, SubmitBeforeFirstPublishIsFailSafeIndeterminate) {
  SnapshotPublisher publisher;
  DecisionEngine engine(publisher, EngineConfig{.workers = 1});
  EngineResult result = engine.submit(probe_request()).get();
  EXPECT_EQ(result.status, CompletionStatus::kDecided);
  EXPECT_TRUE(result.decision.is_indeterminate());
  EXPECT_EQ(result.decision.status.message, kNoSnapshotMessage);
}

// ---------------------------------------------------------------------
// Admission control: deterministic shedding at the queue bound
// ---------------------------------------------------------------------

TEST(DecisionEngineTest, ShedsExactlyTheSubmissionsBeyondTheQueueBound) {
  GateResolver gate;
  SnapshotPublisher publisher;
  publisher.publish(make_gated_store());

  EngineConfig config;
  config.workers = 1;
  config.queue_capacity = 4;
  config.max_batch = 1;
  config.resolver = &gate;
  DecisionEngine engine(publisher, config);

  // Wedge the single worker inside an evaluation...
  auto wedged = engine.submit(probe_request());
  gate.wait_until_blocked(1);

  // ...fill the queue to its bound, then overflow it.
  constexpr std::size_t kOverflow = 5;
  std::vector<std::future<EngineResult>> queued;
  for (std::size_t i = 0; i < 4; ++i) queued.push_back(engine.submit(probe_request()));
  EXPECT_EQ(engine.queue_depth(), 4u);
  EXPECT_EQ(engine.metrics().sheds(), 0u);  // no shed below the bound

  std::vector<std::future<EngineResult>> shed;
  for (std::size_t i = 0; i < kOverflow; ++i) shed.push_back(engine.submit(probe_request()));

  // Sheds complete immediately (before the worker is released), with
  // the distinct queue-full status — Indeterminate, so a PEP denies.
  for (auto& f : shed) {
    EngineResult r = f.get();
    EXPECT_EQ(r.status, CompletionStatus::kShedQueueFull);
    EXPECT_TRUE(r.decision.is_indeterminate());
    EXPECT_EQ(r.decision.status.message, kShedQueueFullMessage);
  }
  const EngineMetrics::Snapshot saturated = engine.metrics();
  EXPECT_EQ(saturated.shed_queue_full, kOverflow);
  EXPECT_DOUBLE_EQ(saturated.saturation(), 1.0);
  EXPECT_GT(saturated.shed_rate(), 0.0);

  // Release the worker: everything admitted still gets a real decision.
  gate.open();
  EXPECT_TRUE(wedged.get().decision.is_permit());
  for (auto& f : queued) {
    EngineResult r = f.get();
    EXPECT_EQ(r.status, CompletionStatus::kDecided);
    EXPECT_TRUE(r.decision.is_permit());
  }
  engine.shutdown();
  EXPECT_EQ(engine.metrics().shed_queue_full, kOverflow);  // and no more
}

TEST(DecisionEngineTest, ExpiredDeadlinesShedInsteadOfEvaluatingLate) {
  GateResolver gate;
  SnapshotPublisher publisher;
  publisher.publish(make_gated_store());

  EngineConfig config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.resolver = &gate;
  DecisionEngine engine(publisher, config);

  auto wedged = engine.submit(probe_request());
  gate.wait_until_blocked(1);
  auto doomed = engine.submit(probe_request(), /*deadline_ms=*/1);
  auto relaxed = engine.submit(probe_request(), /*deadline_ms=*/60'000);

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.open();

  EXPECT_TRUE(wedged.get().decision.is_permit());
  EngineResult late = doomed.get();
  EXPECT_EQ(late.status, CompletionStatus::kShedDeadline);
  EXPECT_EQ(late.decision.status.message, kShedDeadlineMessage);
  EXPECT_EQ(relaxed.get().status, CompletionStatus::kDecided);
  EXPECT_EQ(engine.metrics().shed_deadline, 1u);
}

// ---------------------------------------------------------------------
// Shutdown semantics
// ---------------------------------------------------------------------

TEST(DecisionEngineTest, DrainShutdownCompletesEverythingAdmitted) {
  SnapshotPublisher publisher;
  publisher.publish(bench::make_policy_store(16));
  DecisionEngine engine(publisher, EngineConfig{.workers = 2, .queue_capacity = 512});

  common::Rng rng(7);
  std::vector<std::future<EngineResult>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(engine.submit(bench::random_request(rng, 16, 3)));
  }
  engine.shutdown(DecisionEngine::Drain::kDrain);
  for (auto& f : futures) EXPECT_EQ(f.get().status, CompletionStatus::kDecided);

  // Post-shutdown submissions are shed, not lost.
  EngineResult refused = engine.submit(probe_request()).get();
  EXPECT_EQ(refused.status, CompletionStatus::kShutdown);
  EXPECT_EQ(refused.decision.status.message, kShutdownMessage);
  EXPECT_FALSE(engine.accepting());
}

TEST(DecisionEngineTest, DiscardShutdownCompletesQueuedAsShutdownSheds) {
  GateResolver gate;
  SnapshotPublisher publisher;
  publisher.publish(make_gated_store());

  EngineConfig config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.max_batch = 1;
  config.resolver = &gate;
  DecisionEngine engine(publisher, config);

  auto wedged = engine.submit(probe_request());
  gate.wait_until_blocked(1);
  std::vector<std::future<EngineResult>> queued;
  for (int i = 0; i < 3; ++i) queued.push_back(engine.submit(probe_request()));

  gate.open();  // release before joining; the wedged request completes
  engine.shutdown(DecisionEngine::Drain::kDiscard);

  EXPECT_TRUE(wedged.get().decided());
  std::size_t shutdown_sheds = 0;
  for (auto& f : queued) {
    const EngineResult r = f.get();
    // Either the worker got to it before the discard, or it was
    // completed as a shutdown shed — never dropped on the floor.
    if (r.status == CompletionStatus::kShutdown) {
      EXPECT_EQ(r.decision.status.message, kShutdownMessage);
      ++shutdown_sheds;
    } else {
      EXPECT_EQ(r.status, CompletionStatus::kDecided);
    }
  }
  EXPECT_EQ(engine.metrics().shed_shutdown, shutdown_sheds);
}

// ---------------------------------------------------------------------
// Shared decision cache across workers
// ---------------------------------------------------------------------

TEST(DecisionEngineTest, WorkersShareTheDecisionCache) {
  common::WallClock clock;  // thread-safe; see common/clock.hpp
  cache::DecisionCache cache(clock, /*ttl=*/1'000'000, /*capacity=*/1024);

  SnapshotPublisher publisher;
  auto store = bench::make_policy_store(8);
  core::Pdp reference(store);
  publisher.publish(store);
  DecisionEngine engine(publisher, EngineConfig{.workers = 4}, &cache);

  // A request the store decides definitively (permit) — only definitive
  // decisions are cacheable.
  core::RequestContext request = core::RequestContext::make("u", "res-1", "read");
  request.add(core::Category::kSubject, core::attrs::kRole,
              core::AttributeValue("role-0"));
  const core::Decision expected = reference.evaluate(request);
  ASSERT_TRUE(expected.is_permit());

  // First wave fills, second wave must hit regardless of which worker
  // serves it (the cache is shared, mutex-per-shard).
  EngineResult first = engine.submit(request).get();
  EXPECT_EQ(first.decision, expected);
  std::size_t hits = 0;
  for (int i = 0; i < 32; ++i) {
    EngineResult r = engine.submit(request).get();
    EXPECT_EQ(r.decision, expected);
    if (r.cache_hit) ++hits;
  }
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(engine.metrics().cache_hits, hits);
  EXPECT_GE(cache.stats().hits, hits);
}

TEST(DecisionEngineTest, CacheNeverServesDecisionsFromAReplacedSnapshot) {
  common::WallClock clock;
  cache::DecisionCache cache(clock, /*ttl=*/1'000'000, /*capacity=*/1024);

  SnapshotPublisher publisher;
  publisher.publish(bench::make_policy_store(8));  // v1: res-1/role-0 permits
  // One worker => the republication is adopted at the very next batch.
  DecisionEngine engine(publisher, EngineConfig{.workers = 1}, &cache);

  core::RequestContext request = core::RequestContext::make("u", "res-1", "read");
  request.add(core::Category::kSubject, core::attrs::kRole,
              core::AttributeValue("role-0"));

  EngineResult filled = engine.submit(request).get();
  ASSERT_TRUE(filled.decision.is_permit());
  EngineResult hit = engine.submit(request).get();
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.snapshot_version, 1u);  // hits are snapshot-attributed

  // The policy is withdrawn (empty working set). The cached v1 permit
  // must be unreachable — cache keys are scoped to the snapshot.
  publisher.publish(std::make_shared<core::PolicyStore>());
  EngineResult after = engine.submit(request).get();
  EXPECT_FALSE(after.cache_hit);
  EXPECT_TRUE(after.decision.is_not_applicable());
  EXPECT_EQ(after.snapshot_version, 2u);
  engine.shutdown();
}

// ---------------------------------------------------------------------
// Two-level cache mode: per-worker L1 + shared seqlock L2
// ---------------------------------------------------------------------

TEST(DecisionEngineTest, TwoLevelCacheServesHitsFromBothLevels) {
  cache::DecisionCache cache(cache::DecisionCache::TwoLevelConfig{.capacity = 1024});
  ASSERT_EQ(cache.mode(), cache::DecisionCache::Mode::kTwoLevel);

  SnapshotPublisher publisher;
  auto store = bench::make_policy_store(8);
  core::Pdp reference(store);
  publisher.publish(store);
  // One worker with a one-entry L1 makes every hit's level
  // deterministic: a repeat hits the L1, a request the L1 just evicted
  // hits the L2 and is promoted back.
  EngineConfig config;
  config.workers = 1;
  config.l1_capacity = 1;
  DecisionEngine engine(publisher, config, &cache);

  const auto request_for = [](const char* resource) {
    core::RequestContext r = core::RequestContext::make("u", resource, "read");
    r.add(core::Category::kSubject, core::attrs::kRole,
          core::AttributeValue("role-0"));
    return r;
  };
  const core::RequestContext a = request_for("res-1");
  const core::RequestContext b = request_for("res-2");
  const core::Decision expected_a = reference.evaluate(a);
  ASSERT_TRUE(expected_a.is_permit());

  EngineResult r1 = engine.submit(a).get();  // miss: evaluated, L1 = {a}
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_EQ(r1.cache_level, 0);
  EngineResult r2 = engine.submit(a).get();  // repeat: worker-private L1
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(r2.cache_level, 1);
  EXPECT_EQ(r2.decision, expected_a);
  EngineResult r3 = engine.submit(b).get();  // miss: L1 = {b}, a evicted
  EXPECT_FALSE(r3.cache_hit);
  EngineResult r4 = engine.submit(a).get();  // L1 miss -> shared L2 hit
  EXPECT_TRUE(r4.cache_hit);
  EXPECT_EQ(r4.cache_level, 2);
  EXPECT_EQ(r4.decision, expected_a);  // seqlock payload decodes bit-identically
  EngineResult r5 = engine.submit(a).get();  // the L2 hit was promoted
  EXPECT_TRUE(r5.cache_hit);
  EXPECT_EQ(r5.cache_level, 1);

  engine.shutdown();
  const EngineMetrics::Snapshot m = engine.metrics();
  EXPECT_EQ(m.l1_hits, 2u);
  EXPECT_EQ(m.l2_hits, 1u);
  EXPECT_EQ(m.cache_hits, m.l1_hits + m.l2_hits);
  EXPECT_EQ(m.cache_misses, 2u);
}

TEST(DecisionEngineTest, TwoLevelCacheNeverServesDecisionsFromAReplacedSnapshot) {
  cache::DecisionCache cache(cache::DecisionCache::TwoLevelConfig{.capacity = 1024});

  SnapshotPublisher publisher;
  publisher.publish(bench::make_policy_store(8));  // v1: res-1/role-0 permits
  DecisionEngine engine(publisher, EngineConfig{.workers = 1}, &cache);

  core::RequestContext request = core::RequestContext::make("u", "res-1", "read");
  request.add(core::Category::kSubject, core::attrs::kRole,
              core::AttributeValue("role-0"));

  EngineResult filled = engine.submit(request).get();
  ASSERT_TRUE(filled.decision.is_permit());
  EngineResult hit = engine.submit(request).get();
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.snapshot_version, 1u);

  // Withdraw everything: neither the worker's L1 (flushed at adoption)
  // nor the L2 (version-keyed, swept) may serve the v1 permit.
  publisher.publish(std::make_shared<core::PolicyStore>());
  EngineResult after = engine.submit(request).get();
  EXPECT_FALSE(after.cache_hit);
  EXPECT_TRUE(after.decision.is_not_applicable());
  EXPECT_EQ(after.snapshot_version, 2u);
  engine.shutdown();
  EXPECT_GE(engine.metrics().version_evictions, 1u);
}

/// Satellite: the adoption-time version sweep reclaims exactly the
/// entries of withdrawn snapshot versions — pinned for both cache modes.
void expect_sweep_reclaims_withdrawn_entries(cache::DecisionCache& cache) {
  SnapshotPublisher publisher;
  auto store = bench::make_policy_store(8);
  publisher.publish(store);
  // One worker: adoption (and thus the sweep) happens at the first batch
  // after a publish, deterministically.
  DecisionEngine engine(publisher, EngineConfig{.workers = 1}, &cache);

  constexpr std::size_t kEntries = 16;
  for (std::size_t i = 0; i < kEntries; ++i) {
    core::RequestContext request =
        core::RequestContext::make("u" + std::to_string(i), "res-1", "read");
    request.add(core::Category::kSubject, core::attrs::kRole,
                core::AttributeValue("role-0"));
    EngineResult r = engine.submit(request).get();
    ASSERT_TRUE(r.decision.is_permit());
  }
  ASSERT_EQ(cache.size(), kEntries);
  ASSERT_EQ(engine.metrics().version_evictions, 0u);

  publisher.publish(store);  // v2 (same content, new version)
  core::RequestContext probe = core::RequestContext::make("u0", "res-1", "read");
  probe.add(core::Category::kSubject, core::attrs::kRole,
            core::AttributeValue("role-0"));
  EngineResult after = engine.submit(probe).get();
  EXPECT_FALSE(after.cache_hit);  // v1 entries are unreachable under v2
  EXPECT_EQ(after.snapshot_version, 2u);
  engine.shutdown();
  // The sweep ran at adoption, before the batch's lookups/fills: exactly
  // the kEntries v1 decisions were reclaimed (the probe refilled one
  // entry under v2 afterwards).
  EXPECT_EQ(engine.metrics().version_evictions, kEntries);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DecisionEngineTest, VersionSweepReclaimsWithdrawnEntriesTwoLevel) {
  cache::DecisionCache cache(cache::DecisionCache::TwoLevelConfig{.capacity = 1024});
  expect_sweep_reclaims_withdrawn_entries(cache);
}

TEST(DecisionEngineTest, VersionSweepReclaimsWithdrawnEntriesMutexSharded) {
  common::WallClock clock;
  cache::DecisionCache cache(clock, /*ttl=*/1'000'000, /*capacity=*/1024);
  expect_sweep_reclaims_withdrawn_entries(cache);
}

// ---------------------------------------------------------------------
// Worker placement (pin_workers)
// ---------------------------------------------------------------------

TEST(DecisionEngineTest, PinWorkersIsAGracefulNoOpWhenOversubscribed) {
  SnapshotPublisher publisher;
  publisher.publish(bench::make_policy_store(4));
  EngineConfig config;
  // More workers than cores: pinning must back off entirely (pinned
  // oversubscribed workers would serialise on shared cores).
  config.workers = std::thread::hardware_concurrency() + 1;
  config.pin_workers = true;
  DecisionEngine engine(publisher, config);
  EXPECT_TRUE(engine.submit(probe_request()).get().decided());
  engine.shutdown();
  EXPECT_EQ(engine.workers_pinned(), 0u);
}

TEST(DecisionEngineTest, PinWorkersPinsWhenCoresSuffice) {
  SnapshotPublisher publisher;
  publisher.publish(bench::make_policy_store(4));
  EngineConfig config;
  config.workers = 1;  // hardware_concurrency() >= 1 everywhere
  config.pin_workers = true;
  DecisionEngine engine(publisher, config);
  EXPECT_TRUE(engine.submit(probe_request()).get().decided());
  engine.shutdown();
#ifdef __linux__
  EXPECT_EQ(engine.workers_pinned(), 1u);
#else
  EXPECT_EQ(engine.workers_pinned(), 0u);  // graceful platform no-op
#endif
}

// ---------------------------------------------------------------------
// Publish hook: the version-based flush signal for PEP-side caches
// ---------------------------------------------------------------------

TEST(SnapshotPublisherTest, PublishHooksSeeEveryVersionInOrder) {
  SnapshotPublisher publisher;
  std::vector<std::uint64_t> seen;
  publisher.add_publish_hook([&](std::uint64_t v) { seen.push_back(v); });
  publisher.publish(bench::make_policy_store(2));
  publisher.publish(bench::make_policy_store(2));
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2}));
}

TEST(SnapshotPublisherTest, PublishHookFlushesAPepSideDecisionCache) {
  // A PEP-side cache (CachingEvaluator stores under version 0) wired to
  // drop stale decisions whenever policy is republished — the
  // single-consumer flush shape the hook exists for.
  common::WallClock clock;
  cache::DecisionCache cache(clock, /*ttl=*/1'000'000, /*capacity=*/64);
  SnapshotPublisher publisher;
  publisher.add_publish_hook(
      [&cache](std::uint64_t version) { cache.evict_older_than(version); });

  std::size_t evaluations = 0;
  cache::CachingEvaluator evaluator(cache, [&](const core::RequestContext&) {
    ++evaluations;
    return core::Decision::permit();
  });
  evaluator(probe_request());
  evaluator(probe_request());
  EXPECT_EQ(evaluations, 1u);  // second call was a cache hit

  publisher.publish(bench::make_policy_store(2));  // version 1 > 0: flushed
  evaluator(probe_request());
  EXPECT_EQ(evaluations, 2u);  // re-evaluated against the new policy
}

// ---------------------------------------------------------------------
// Wiring: EnforcementPoint and PdpService through the engine
// ---------------------------------------------------------------------

TEST(DecisionEngineTest, EnforcementPointSubmitsThroughEngine) {
  SnapshotPublisher publisher;
  publisher.publish(bench::make_policy_store(4));
  DecisionEngine engine(publisher, EngineConfig{.workers = 2});

  pep::EnforcementPoint point(engine_decision_source(engine));
  core::RequestContext allowed = core::RequestContext::make("u", "res-1", "read");
  allowed.add(core::Category::kSubject, core::attrs::kRole,
              core::AttributeValue("role-0"));
  EXPECT_TRUE(point.enforce(allowed).allowed);

  core::RequestContext refused = core::RequestContext::make("u", "res-1", "read");
  refused.add(core::Category::kSubject, core::attrs::kRole,
              core::AttributeValue("role-99"));
  EXPECT_FALSE(point.enforce(refused).allowed);

  // role-99 was denied BY POLICY (the trailing deny rule), not by bias;
  // a shed after shutdown is Indeterminate -> the fail-safe deny bias.
  EXPECT_EQ(point.denials_by_bias(), 0u);
  engine.shutdown();
  const pep::Enforcement e = point.enforce(allowed);
  EXPECT_FALSE(e.allowed);
  EXPECT_EQ(point.denials_by_bias(), 1u);
}

TEST(DecisionEngineTest, PdpServiceServesWireTrafficThroughEngine) {
  SnapshotPublisher publisher;
  publisher.publish(bench::make_policy_store(4));
  DecisionEngine engine(publisher, EngineConfig{.workers = 2});

  net::Simulator sim;
  net::Network network(sim);
  network.set_default_link({5, 0, 0.0});
  // The service still carries a local replica; the engine overrides it.
  auto local = std::make_shared<core::Pdp>(bench::make_policy_store(4));
  pep::PdpService service(network, "domain/pdp", local);
  service.set_engine(&engine);
  pep::RemotePdpClient client(network, "domain/pep", "domain/pdp");

  core::RequestContext request = core::RequestContext::make("u", "res-2", "read");
  request.add(core::Category::kSubject, core::attrs::kRole,
              core::AttributeValue("role-1"));
  std::optional<core::Decision> got;
  client.evaluate(request, [&](core::Decision d) { got = std::move(d); });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->is_permit());
  EXPECT_EQ(service.requests_served(), 1u);
  EXPECT_EQ(engine.metrics().decided, 1u);
}

TEST(DecisionEngineTest, ReplicatedClientTrafficLandsOnEngineBackedReplicas) {
  SnapshotPublisher publisher;
  publisher.publish(bench::make_policy_store(4));
  DecisionEngine engine(publisher, EngineConfig{.workers = 2});

  net::Simulator sim;
  net::Network network(sim);
  network.set_default_link({5, 0, 0.0});
  auto local_a = std::make_shared<core::Pdp>(bench::make_policy_store(4));
  auto local_b = std::make_shared<core::Pdp>(bench::make_policy_store(4));
  dependability::PdpReplica replica_a(network, "pdp/a", local_a);
  dependability::PdpReplica replica_b(network, "pdp/b", local_b);
  replica_a.service().set_engine(&engine);
  replica_b.service().set_engine(&engine);
  replica_a.set_up(false);  // failover forces the dispatcher to walk on

  dependability::ReplicatedPdpClient client(network, "pep/client", {"pdp/a", "pdp/b"},
                                            dependability::DispatchStrategy::kFailover,
                                            /*per_try_timeout=*/50);
  core::RequestContext request = core::RequestContext::make("u", "res-3", "read");
  request.add(core::Category::kSubject, core::attrs::kRole,
              core::AttributeValue("role-2"));
  std::optional<core::Decision> got;
  client.evaluate(request, [&](core::Decision d) { got = std::move(d); });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->is_permit());
  EXPECT_EQ(replica_b.requests_served(), 1u);
  EXPECT_EQ(engine.metrics().decided, 1u);
  EXPECT_EQ(client.stats().failovers, 1u);
}

// ---------------------------------------------------------------------
// Metrics surface
// ---------------------------------------------------------------------

TEST(DecisionEngineTest, MetricsExposeLatencyAndBatchShape) {
  SnapshotPublisher publisher;
  publisher.publish(bench::make_policy_store(8));
  DecisionEngine engine(publisher, EngineConfig{.workers = 2, .max_batch = 8});

  common::Rng rng(11);
  std::vector<std::future<EngineResult>> futures;
  for (int i = 0; i < 128; ++i) {
    futures.push_back(engine.submit(bench::random_request(rng, 8, 3)));
  }
  for (auto& f : futures) f.get();
  engine.shutdown();

  const EngineMetrics::Snapshot m = engine.metrics();
  EXPECT_EQ(m.decided, 128u);
  EXPECT_GT(m.latency_p50_ns, 0.0);
  EXPECT_GE(m.latency_p90_ns, m.latency_p50_ns);
  EXPECT_GE(m.latency_p99_ns, m.latency_p90_ns);
  EXPECT_GT(m.mean_batch_size, 0.0);
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_EQ(m.queue_capacity, engine.queue_capacity());
}

// ---------------------------------------------------------------------
// core::Pdp debug owner-thread contract (satellite)
// ---------------------------------------------------------------------

#ifndef NDEBUG
using PdpThreadContractDeathTest = ::testing::Test;

TEST(PdpThreadContractDeathTest, CrossThreadEvaluateAsserts) {
  // threadsafe style re-execs the test binary for the death assertion —
  // required here because the statement under test spawns a thread.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto store = bench::make_policy_store(2);
  core::Pdp pdp(store);
  pdp.evaluate(probe_request());  // this thread now owns the Pdp
  EXPECT_DEATH(
      {
        std::thread other([&] { pdp.evaluate(probe_request()); });
        other.join();
      },
      "single-threaded");
}

TEST(PdpThreadContractDeathTest, RebindAllowsSerialisedHandOff) {
  auto store = bench::make_policy_store(2);
  core::Pdp pdp(store);
  pdp.evaluate(probe_request());
  pdp.rebind_owner_thread();
  core::Decision moved_result;
  std::thread other([&] { moved_result = pdp.evaluate(probe_request()); });
  other.join();
  EXPECT_FALSE(moved_result.is_indeterminate());
}
#endif  // !NDEBUG

// ---------------------------------------------------------------------
// Decision tracing (mdac::obs)
// ---------------------------------------------------------------------

TEST(DecisionEngineTracingTest, SampledTraceReconstructsDecisionPath) {
  cache::DecisionCache cache(cache::DecisionCache::TwoLevelConfig{.capacity = 256});
  SnapshotPublisher publisher;
  publisher.publish(bench::make_policy_store(8));
  obs::DecisionTracer tracer(obs::ObsConfig{.sample_every_n = 1});
  EngineConfig config;
  config.workers = 1;
  config.l1_capacity = 64;
  config.tracer = &tracer;
  DecisionEngine engine(publisher, config, &cache);

  core::RequestContext request = core::RequestContext::make("u", "res-1", "read");
  request.add(core::Category::kSubject, core::attrs::kRole,
              core::AttributeValue("role-0"));
  const EngineResult miss = engine.submit(request).get();
  const EngineResult hit = engine.submit(request).get();
  engine.shutdown();
  ASSERT_TRUE(miss.decision.is_permit());
  ASSERT_NE(miss.trace_id, 0u);
  ASSERT_NE(hit.trace_id, 0u);
  EXPECT_NE(miss.trace_id, hit.trace_id);

  // The evaluated request's trace walks the full path: admission →
  // queue wait → batch membership → cache miss → replica evaluation →
  // outcome, timestamps monotone, summary fields matching the result.
  const auto trace = tracer.find(miss.trace_id);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->outcome, obs::TraceOutcome::kDecided);
  EXPECT_FALSE(trace->anomaly);
  EXPECT_EQ(trace->worker, 0u);
  EXPECT_EQ(trace->snapshot_version, miss.snapshot_version);
  EXPECT_EQ(trace->cache_level, miss.cache_level);
  std::vector<obs::SpanKind> kinds;
  for (std::size_t i = 0; i < trace->span_count; ++i) {
    const obs::Span& span = trace->spans[i];
    kinds.push_back(span.kind);
    EXPECT_GE(span.at_ns, trace->started_ns);
    if (i > 0) {
      EXPECT_GE(span.at_ns, trace->spans[i - 1].at_ns);
    }
  }
  const std::vector<obs::SpanKind> expected = {
      obs::SpanKind::kAdmission,  obs::SpanKind::kQueueWait,
      obs::SpanKind::kBatch,      obs::SpanKind::kCacheProbe,
      obs::SpanKind::kEvaluate,   obs::SpanKind::kOutcome};
  EXPECT_EQ(kinds, expected);
  EXPECT_GE(trace->finished_ns, trace->started_ns);
  EXPECT_EQ(trace->latency_ns(), trace->finished_ns - trace->started_ns);

  // The repeat hit the worker-private L1: its trace records the serving
  // level and carries no evaluate span.
  const auto hit_trace = tracer.find(hit.trace_id);
  ASSERT_TRUE(hit_trace.has_value());
  EXPECT_EQ(hit_trace->cache_level, 1);
  bool saw_probe = false;
  for (std::size_t i = 0; i < hit_trace->span_count; ++i) {
    const obs::Span& span = hit_trace->spans[i];
    EXPECT_NE(span.kind, obs::SpanKind::kEvaluate);
    if (span.kind == obs::SpanKind::kCacheProbe) {
      saw_probe = true;
      EXPECT_EQ(span.a, 1u);  // a = serving level
    }
  }
  EXPECT_TRUE(saw_probe);
}

TEST(DecisionEngineTracingTest, ShedIsTailSampledEvenWithHeadSamplingOff) {
  GateResolver gate;
  SnapshotPublisher publisher;
  publisher.publish(make_gated_store());
  // sample_every_n = 0: no head sampling at all — only the anomaly
  // tail-path can publish.
  obs::DecisionTracer tracer(obs::ObsConfig{.sample_every_n = 0});
  EngineConfig config;
  config.workers = 1;
  config.queue_capacity = 2;
  config.max_batch = 1;
  config.resolver = &gate;
  config.tracer = &tracer;
  DecisionEngine engine(publisher, config);

  auto wedged = engine.submit(probe_request());
  gate.wait_until_blocked(1);
  std::vector<std::future<EngineResult>> queued;
  for (int i = 0; i < 2; ++i) queued.push_back(engine.submit(probe_request()));
  const EngineResult shed = engine.submit(probe_request()).get();
  ASSERT_EQ(shed.status, CompletionStatus::kShedQueueFull);
  ASSERT_NE(shed.trace_id, 0u);

  // The shed was synthesized at completion: outcome, anomaly flag and
  // path summary all present despite head sampling being off.
  const auto trace = tracer.find(shed.trace_id);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->outcome, obs::TraceOutcome::kShedQueueFull);
  EXPECT_TRUE(trace->anomaly);
  EXPECT_EQ(trace->worker, obs::Trace::kNoWorker);
  EXPECT_EQ(trace->snapshot_version, 0u);
  EXPECT_EQ(trace->decision, core::DecisionType::kIndeterminate);
  ASSERT_GE(trace->span_count, 2u);
  EXPECT_EQ(trace->spans[0].kind, obs::SpanKind::kAdmission);
  const obs::Span& outcome = trace->spans[trace->span_count - 1];
  EXPECT_EQ(outcome.kind, obs::SpanKind::kOutcome);
  EXPECT_EQ(outcome.tag_view(), "shed-queue-full");
  EXPECT_EQ(tracer.anomalies_total(), 1u);

  gate.open();
  wedged.get();
  for (auto& f : queued) f.get();
  engine.shutdown();
  // Decided, non-sampled completions stayed unpublished.
  EXPECT_EQ(tracer.published_total(), 1u);
  EXPECT_EQ(tracer.admitted_total(), 4u);
}

TEST(DecisionEngineTracingTest, NoSnapshotFailsafeIsFlaggedAnomalous) {
  SnapshotPublisher publisher;
  obs::DecisionTracer tracer(obs::ObsConfig{.sample_every_n = 0});
  EngineConfig config;
  config.workers = 1;
  config.tracer = &tracer;
  DecisionEngine engine(publisher, config);
  const EngineResult result = engine.submit(probe_request()).get();
  engine.shutdown();
  ASSERT_TRUE(result.decision.is_indeterminate());
  const auto trace = tracer.find(result.trace_id);
  ASSERT_TRUE(trace.has_value());
  // Decided — the engine answered — but Indeterminate, so the trace is
  // an always-sampled anomaly.
  EXPECT_EQ(trace->outcome, obs::TraceOutcome::kDecided);
  EXPECT_TRUE(trace->anomaly);
  EXPECT_EQ(trace->decision, core::DecisionType::kIndeterminate);
}

TEST(DecisionEngineTracingTest, UntracedEngineAssignsNoTraceIds) {
  SnapshotPublisher publisher;
  publisher.publish(bench::make_policy_store(2));
  DecisionEngine engine(publisher, EngineConfig{.workers = 1});
  const EngineResult result = engine.submit(probe_request()).get();
  engine.shutdown();
  EXPECT_EQ(result.trace_id, 0u);
}

}  // namespace
}  // namespace mdac::runtime
