#include <gtest/gtest.h>

#include "core/attribute.hpp"
#include "core/request.hpp"

namespace mdac::core {
namespace {

// ---------------------------------------------------------------------
// AttributeValue
// ---------------------------------------------------------------------

TEST(AttributeValueTest, TypesAreDiscriminated) {
  EXPECT_EQ(AttributeValue("x").type(), DataType::kString);
  EXPECT_EQ(AttributeValue(true).type(), DataType::kBoolean);
  EXPECT_EQ(AttributeValue(std::int64_t{5}).type(), DataType::kInteger);
  EXPECT_EQ(AttributeValue(2.5).type(), DataType::kDouble);
  EXPECT_EQ(AttributeValue(TimeValue{99}).type(), DataType::kTime);
}

TEST(AttributeValueTest, IntegerAndTimeAreDistinct) {
  // A time value and an integer with the same numeric payload must not
  // compare equal — the type is part of the value.
  EXPECT_NE(AttributeValue(std::int64_t{7}), AttributeValue(TimeValue{7}));
}

TEST(AttributeValueTest, EqualityWithinType) {
  EXPECT_EQ(AttributeValue("a"), AttributeValue("a"));
  EXPECT_NE(AttributeValue("a"), AttributeValue("b"));
  EXPECT_NE(AttributeValue("1"), AttributeValue(std::int64_t{1}));
}

struct TextCase {
  DataType type;
  std::string text;
};

class TextRoundTrip : public ::testing::TestWithParam<TextCase> {};

TEST_P(TextRoundTrip, FromTextToTextIsIdentity) {
  const auto& param = GetParam();
  const auto v = AttributeValue::from_text(param.type, param.text);
  ASSERT_TRUE(v.has_value()) << param.text;
  EXPECT_EQ(v->type(), param.type);
  const auto again = AttributeValue::from_text(param.type, v->to_text());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *v);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, TextRoundTrip,
    ::testing::Values(TextCase{DataType::kString, "hello world"},
                      TextCase{DataType::kString, ""},
                      TextCase{DataType::kString, "with <xml> & entities"},
                      TextCase{DataType::kBoolean, "true"},
                      TextCase{DataType::kBoolean, "false"},
                      TextCase{DataType::kInteger, "0"},
                      TextCase{DataType::kInteger, "-42"},
                      TextCase{DataType::kInteger, "9223372036854775807"},
                      TextCase{DataType::kDouble, "2.5"},
                      TextCase{DataType::kDouble, "-0.125"},
                      TextCase{DataType::kTime, "1700000000000"}));

TEST(AttributeValueTest, FromTextRejectsGarbage) {
  EXPECT_FALSE(AttributeValue::from_text(DataType::kInteger, "12x").has_value());
  EXPECT_FALSE(AttributeValue::from_text(DataType::kInteger, "").has_value());
  EXPECT_FALSE(AttributeValue::from_text(DataType::kBoolean, "yes").has_value());
  EXPECT_FALSE(AttributeValue::from_text(DataType::kDouble, "1.2.3").has_value());
  EXPECT_FALSE(AttributeValue::from_text(DataType::kTime, "noon").has_value());
}

TEST(AttributeValueTest, BooleanAcceptsNumericForms) {
  EXPECT_EQ(AttributeValue::from_text(DataType::kBoolean, "1"), AttributeValue(true));
  EXPECT_EQ(AttributeValue::from_text(DataType::kBoolean, "0"), AttributeValue(false));
}

// ---------------------------------------------------------------------
// Bag
// ---------------------------------------------------------------------

TEST(BagTest, BasicOperations) {
  Bag bag;
  EXPECT_TRUE(bag.empty());
  bag.add(AttributeValue("a"));
  bag.add(AttributeValue("b"));
  EXPECT_EQ(bag.size(), 2u);
  EXPECT_TRUE(bag.contains(AttributeValue("a")));
  EXPECT_FALSE(bag.contains(AttributeValue("c")));
  EXPECT_FALSE(bag.singleton());
  EXPECT_TRUE(Bag(AttributeValue("x")).singleton());
}

TEST(BagTest, SetEqualsIsOrderInsensitive) {
  const Bag a = Bag::of({AttributeValue("x"), AttributeValue("y")});
  const Bag b = Bag::of({AttributeValue("y"), AttributeValue("x")});
  EXPECT_TRUE(a.set_equals(b));
  EXPECT_FALSE(a == b);  // plain equality is order-sensitive
}

TEST(BagTest, SetEqualsIsMultisetSensitive) {
  const Bag a = Bag::of({AttributeValue("x"), AttributeValue("x")});
  const Bag b = Bag::of({AttributeValue("x")});
  EXPECT_FALSE(a.set_equals(b));
}

// ---------------------------------------------------------------------
// Enum conversions
// ---------------------------------------------------------------------

TEST(EnumsTest, CategoryRoundTrip) {
  for (const Category c : {Category::kSubject, Category::kResource, Category::kAction,
                           Category::kEnvironment, Category::kDelegate}) {
    EXPECT_EQ(category_from_string(to_string(c)), c);
  }
  EXPECT_FALSE(category_from_string("nonsense").has_value());
}

TEST(EnumsTest, DataTypeRoundTrip) {
  for (const DataType t : {DataType::kString, DataType::kBoolean, DataType::kInteger,
                           DataType::kDouble, DataType::kTime}) {
    EXPECT_EQ(data_type_from_string(to_string(t)), t);
  }
  EXPECT_FALSE(data_type_from_string("float").has_value());
}

// ---------------------------------------------------------------------
// RequestContext
// ---------------------------------------------------------------------

TEST(RequestContextTest, AddAccumulatesIntoBags) {
  RequestContext ctx;
  ctx.add(Category::kSubject, "role", AttributeValue("doctor"));
  ctx.add(Category::kSubject, "role", AttributeValue("researcher"));
  const Bag* bag = ctx.get(Category::kSubject, "role");
  ASSERT_NE(bag, nullptr);
  EXPECT_EQ(bag->size(), 2u);
}

TEST(RequestContextTest, GetDistinguishesCategories) {
  RequestContext ctx;
  ctx.add(Category::kSubject, "id", AttributeValue("alice"));
  EXPECT_NE(ctx.get(Category::kSubject, "id"), nullptr);
  EXPECT_EQ(ctx.get(Category::kResource, "id"), nullptr);
}

TEST(RequestContextTest, SetReplacesBag) {
  RequestContext ctx;
  ctx.add(Category::kAction, "x", AttributeValue("1"));
  ctx.set(Category::kAction, "x", Bag(AttributeValue("2")));
  EXPECT_EQ(ctx.get(Category::kAction, "x")->size(), 1u);
  EXPECT_TRUE(ctx.get(Category::kAction, "x")->contains(AttributeValue("2")));
}

TEST(RequestContextTest, MakeBuildsCanonicalTriple) {
  const RequestContext ctx = RequestContext::make("alice", "doc", "read");
  EXPECT_TRUE(ctx.get(Category::kSubject, attrs::kSubjectId)
                  ->contains(AttributeValue("alice")));
  EXPECT_TRUE(ctx.get(Category::kResource, attrs::kResourceId)
                  ->contains(AttributeValue("doc")));
  EXPECT_TRUE(ctx.get(Category::kAction, attrs::kActionId)
                  ->contains(AttributeValue("read")));
}

TEST(RequestContextTest, BuilderCoversAllCategories) {
  const RequestContext ctx = RequestBuilder()
                                 .subject("alice")
                                 .subject_attr("role", AttributeValue("doctor"))
                                 .resource("doc")
                                 .resource_attr("owner", AttributeValue("bob"))
                                 .action("write")
                                 .action_attr("mode", AttributeValue("append"))
                                 .environment_attr("tod", AttributeValue(std::int64_t{9}))
                                 .build();
  EXPECT_EQ(ctx.size(), 7u);
  EXPECT_TRUE(ctx.has(Category::kEnvironment, "tod"));
  EXPECT_TRUE(ctx.has(Category::kAction, "mode"));
}

}  // namespace
}  // namespace mdac::core
