#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/interner.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace mdac::common {
namespace {

// ---------------------------------------------------------------------
// bytes: hex
// ---------------------------------------------------------------------

TEST(HexTest, EncodesKnownBytes) {
  EXPECT_EQ(hex_encode({0x00, 0xff, 0x10, 0xab}), "00ff10ab");
  EXPECT_EQ(hex_encode({}), "");
}

TEST(HexTest, DecodesUpperAndLowerCase) {
  const auto lower = hex_decode("00ff10ab");
  ASSERT_TRUE(lower.has_value());
  EXPECT_EQ(*lower, (Bytes{0x00, 0xff, 0x10, 0xab}));
  const auto upper = hex_decode("00FF10AB");
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(*upper, *lower);
}

TEST(HexTest, RejectsMalformedInput) {
  EXPECT_FALSE(hex_decode("abc").has_value());   // odd length
  EXPECT_FALSE(hex_decode("zz").has_value());    // non-hex
  EXPECT_FALSE(hex_decode("0g").has_value());
}

// ---------------------------------------------------------------------
// bytes: base64
// ---------------------------------------------------------------------

TEST(Base64Test, RfcTestVectors) {
  // RFC 4648 §10.
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64Test, DecodesRfcTestVectors) {
  EXPECT_EQ(to_string(*base64_decode("Zm9vYmFy")), "foobar");
  EXPECT_EQ(to_string(*base64_decode("Zg==")), "f");
  EXPECT_EQ(to_string(*base64_decode("")), "");
}

TEST(Base64Test, RejectsMalformedInput) {
  EXPECT_FALSE(base64_decode("Zg=").has_value());     // bad length
  EXPECT_FALSE(base64_decode("Z===").has_value());    // over-padded
  EXPECT_FALSE(base64_decode("Zg=a").has_value());    // data after padding
  EXPECT_FALSE(base64_decode("Zm!v").has_value());    // bad character
}

class Base64RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Base64RoundTrip, EncodeDecodeIsIdentity) {
  Bytes data;
  for (std::size_t i = 0; i < GetParam(); ++i) {
    data.push_back(static_cast<std::uint8_t>((i * 131 + 17) & 0xff));
  }
  const auto decoded = base64_decode(base64_encode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Base64RoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 63, 64, 65, 255, 256,
                                           1000));

// ---------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------

TEST(StringsTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, JoinInverseOfSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, "/"), "x/y/z");
  EXPECT_EQ(split(join(parts, "/"), '/'), parts);
  EXPECT_EQ(join({}, "/"), "");
}

TEST(StringsTest, TrimStripsWhitespace) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(to_lower("AbC-123"), "abc-123");
}

TEST(StringsTest, WildcardMatching) {
  EXPECT_TRUE(wildcard_match("*", "anything"));
  EXPECT_TRUE(wildcard_match("a/*", "a/b"));
  EXPECT_TRUE(wildcard_match("a/*", "a/"));
  EXPECT_FALSE(wildcard_match("a/*", "b/a"));
  EXPECT_TRUE(wildcard_match("exact", "exact"));
  EXPECT_FALSE(wildcard_match("exact", "exact2"));
}

// ---------------------------------------------------------------------
// clock
// ---------------------------------------------------------------------

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance(50);
  EXPECT_EQ(clock.now(), 150);
  clock.set(42);
  EXPECT_EQ(clock.now(), 42);
}

TEST(ClockTest, WallClockIsMonotonicEnough) {
  WallClock clock;
  const TimePoint a = clock.now();
  const TimePoint b = clock.now();
  EXPECT_LE(a, b);
  EXPECT_GT(a, 0);
}

// ---------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(RngTest, PickThrowsOnEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
  std::vector<int> one{42};
  EXPECT_EQ(rng.pick(one), 42);
}

// ---------------------------------------------------------------------
// Interner
// ---------------------------------------------------------------------

TEST(InternerTest, InternIsIdempotentAndFindNeverInserts) {
  Interner interner;
  const Symbol a = interner.intern("alpha");
  EXPECT_EQ(interner.intern("alpha"), a);
  EXPECT_EQ(interner.name(a), "alpha");

  EXPECT_FALSE(interner.find("beta").has_value());
  EXPECT_EQ(interner.size(), 1u);  // find() did not grow the table
  const Symbol b = interner.intern("beta");
  EXPECT_NE(a, b);
  ASSERT_TRUE(interner.find("beta").has_value());
  EXPECT_EQ(*interner.find("beta"), b);
}

TEST(InternerTest, CapBoundsWireDrivenGrowth) {
  Interner interner;
  interner.set_max_size(2);
  interner.intern("one");
  interner.intern("two");
  EXPECT_EQ(interner.intern("one"), interner.intern("one"));  // existing ok
  EXPECT_THROW(interner.intern("three"), std::length_error);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, ByteCapBoundsTotalInternedMemory) {
  Interner interner;
  interner.set_max_bytes(10);
  interner.intern("12345");                                   // 5 bytes
  EXPECT_THROW(interner.intern("123456789"), std::length_error);  // would be 14
  interner.intern("abcde");                                   // exactly 10
  EXPECT_THROW(interner.intern("x"), std::length_error);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, NameThrowsOnBadSymbol) {
  Interner interner;
  EXPECT_THROW(interner.name(123), std::out_of_range);
}

}  // namespace
}  // namespace mdac::common
