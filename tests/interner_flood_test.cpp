// Regression tests for the interner-boundary fairness bug (ROADMAP
// hardening item, fixed in PR 2): before the fix, request parsing
// interned every attribute name it saw, so one abusive wire peer could
// permanently fill the process-global symbol table and legitimate *new*
// attribute names from other peers then failed until restart — the caps
// bounded memory, not fairness. Now parsing keeps unknown names out of
// the interner entirely (per-request side table), so exhaustion by one
// peer cannot break another peer's requests; and PAP vocabulary
// registration (the trusted admin path) is the only wire-adjacent road
// into the table.
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>

#include "common/interner.hpp"
#include "core/pdp.hpp"
#include "core/serialization.hpp"
#include "cache/decision_cache.hpp"
#include "cache/request_key.hpp"
#include "net/rpc.hpp"
#include "net/sim.hpp"
#include "pap/repository.hpp"
#include "pep/remote.hpp"

namespace mdac {
namespace {

/// Caps the global interner at its current size for the test's duration
/// — the state an abusive peer leaves behind once the count cap is hit —
/// and restores the default caps afterwards so sibling tests see the
/// normal configuration.
class InternerSaturation {
 public:
  InternerSaturation() {
    // Intern the well-known vocabulary first — in production it exists
    // long before any flood; test binaries initialise it lazily.
    (void)core::attrs::Symbols::get();
    common::interner().set_max_size(common::interner().size());
  }
  ~InternerSaturation() {
    common::interner().set_max_size(common::Interner::kDefaultMaxSize);
    common::interner().set_max_bytes(common::Interner::kDefaultMaxBytes);
  }
};

/// A policy for "vault" readers carrying a project clearance attribute
/// that nothing in the process has interned.
core::Policy project_policy(const std::string& attribute) {
  core::Policy p;
  p.policy_id = "vault-project-access";
  p.rule_combining = "first-applicable";
  p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                        core::AttributeValue("vault"));
  core::Rule permit;
  permit.id = "permit-apollo";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kSubject, attribute, core::AttributeValue("apollo"));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  core::Rule deny;
  deny.id = "deny-rest";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  return p;
}

/// Peer B's wire request: standard triple plus a fresh attribute name.
std::string wire_request(const std::string& attribute, const std::string& value) {
  core::RequestContext req = core::RequestContext::make("peer-b-user", "vault", "read");
  req.add(core::Category::kSubject, attribute, core::AttributeValue(value));
  return core::request_to_string(req);
}

TEST(InternerFlood, SaturatedTableStillThrowsForNewInterns) {
  InternerSaturation saturated;
  EXPECT_THROW(common::interner().intern("flood-name-after-cap"),
               std::length_error);
  // Existing symbols keep resolving.
  EXPECT_TRUE(common::interner().find(core::attrs::kSubjectId).has_value());
}

TEST(InternerFlood, RequestParsingNeverGrowsTheInterner) {
  (void)core::attrs::Symbols::get();  // well-known ids exist up front
  const std::size_t before = common::interner().size();
  const core::RequestContext req = core::request_from_string(
      wire_request("never-seen-attribute-name", "whatever"));
  EXPECT_EQ(common::interner().size(), before);
  // The attribute is still carried and retrievable.
  const core::Bag* bag =
      req.get(core::Category::kSubject, std::string("never-seen-attribute-name"));
  ASSERT_NE(bag, nullptr);
  EXPECT_EQ(bag->at(0).as_string(), "whatever");
  EXPECT_EQ(req.side_attributes().size(), 1u);
}

TEST(InternerFlood, SecondPeersFreshNamesEvaluateAfterSaturation) {
  // Peer A has exhausted the symbol table. A policy using a fresh
  // attribute name arrives (its name cannot be interned any more), and
  // peer B sends requests carrying that fresh name. Both must still
  // work: the decision is Permit/Deny on the merits, never
  // Indeterminate-by-exhaustion.
  InternerSaturation saturated;
  const std::string attribute = "project-clearance-post-flood";
  ASSERT_FALSE(common::interner().find(attribute).has_value());

  auto store = std::make_shared<core::PolicyStore>();
  store->add(project_policy(attribute));
  core::Pdp pdp(store);

  const std::size_t before = common::interner().size();
  const core::RequestContext authorised =
      core::request_from_string(wire_request(attribute, "apollo"));
  const core::RequestContext unauthorised =
      core::request_from_string(wire_request(attribute, "manhattan"));
  EXPECT_EQ(common::interner().size(), before) << "wire parse interned a name";

  EXPECT_TRUE(pdp.evaluate(authorised).is_permit());
  EXPECT_TRUE(pdp.evaluate(unauthorised).is_deny());
  // And the index rebuild under saturation did not intern either.
  EXPECT_EQ(common::interner().size(), before);
}

TEST(InternerFlood, SideTableEntriesResolveAfterLateInterning) {
  // A request parsed before its vocabulary is interned keeps resolving
  // after some later (trusted) path interns the name: symbol-keyed
  // probes fall back to the side table when it is non-empty.
  const std::string attribute = "late-interned-attribute";
  ASSERT_FALSE(common::interner().find(attribute).has_value());

  core::RequestContext req;
  req.add(core::Category::kSubject, attribute, core::AttributeValue("x"));
  ASSERT_EQ(req.side_attributes().size(), 1u);

  const common::Symbol sym = common::interner().intern(attribute);
  const core::Bag* bag = req.get(core::Category::kSubject, sym);
  ASSERT_NE(bag, nullptr);
  EXPECT_EQ(bag->at(0).as_string(), "x");
}

TEST(InternerFlood, WritesAfterLateInterningKeepOneLogicalBag) {
  // An attribute added before its name is interned parks in the side
  // table; a write after late interning must fold that entry into the
  // symbol-keyed storage — never split one logical bag across the two.
  const std::string attribute = "late-interned-merge-attribute";
  ASSERT_FALSE(common::interner().find(attribute).has_value());

  core::RequestContext req;
  req.add(core::Category::kSubject, attribute, core::AttributeValue("v1"));
  const common::Symbol sym = common::interner().intern(attribute);
  req.add(core::Category::kSubject, attribute, core::AttributeValue("v2"));

  EXPECT_TRUE(req.side_attributes().empty());
  const core::Bag* bag = req.get(core::Category::kSubject, sym);
  ASSERT_NE(bag, nullptr);
  EXPECT_EQ(bag->size(), 2u);
  EXPECT_TRUE(bag->contains(core::AttributeValue("v1")));
  EXPECT_TRUE(bag->contains(core::AttributeValue("v2")));
  // The attribute appears exactly once in every canonical view.
  EXPECT_EQ(req.entries_by_name().size(), 1u);

  // Same through the pre-interned Symbol overload.
  const std::string attribute2 = "late-interned-merge-attribute-2";
  core::RequestContext req2;
  req2.add(core::Category::kSubject, attribute2, core::AttributeValue("v1"));
  const common::Symbol sym2 = common::interner().intern(attribute2);
  req2.add(core::Category::kSubject, sym2, core::AttributeValue("v2"));
  EXPECT_TRUE(req2.side_attributes().empty());
  ASSERT_NE(req2.get(core::Category::kSubject, sym2), nullptr);
  EXPECT_EQ(req2.get(core::Category::kSubject, sym2)->size(), 2u);

  // set() replaces the whole bag, including a stale side entry.
  const std::string attribute3 = "late-interned-set-attribute";
  core::RequestContext req3;
  req3.add(core::Category::kSubject, attribute3, core::AttributeValue("old"));
  (void)common::interner().intern(attribute3);
  req3.set(core::Category::kSubject, attribute3, core::Bag(core::AttributeValue("new")));
  EXPECT_TRUE(req3.side_attributes().empty());
  const core::Bag* bag3 =
      req3.get(core::Category::kSubject, std::string(attribute3));
  ASSERT_NE(bag3, nullptr);
  EXPECT_EQ(bag3->size(), 1u);
  EXPECT_TRUE(bag3->contains(core::AttributeValue("new")));
}

TEST(InternerFlood, SideTableRoundTripsAndFingerprints) {
  InternerSaturation saturated;
  const core::RequestContext req = core::request_from_string(
      wire_request("opaque-wire-attribute", "value-1"));

  // Wire round trip preserves side-table attributes and equality.
  const core::RequestContext reparsed =
      core::request_from_string(core::request_to_string(req));
  EXPECT_EQ(req, reparsed);

  // The cache fingerprint distinguishes side-table values — two
  // requests differing only in an un-interned attribute must never
  // share a cached decision.
  const core::RequestContext other = core::request_from_string(
      wire_request("opaque-wire-attribute", "value-2"));
  EXPECT_FALSE(cache::fingerprint(req) == cache::fingerprint(other));
  EXPECT_TRUE(cache::fingerprint(req) == cache::fingerprint(reparsed));

  // The canonical string key sees them too.
  EXPECT_NE(cache::canonical_request_key(req).find("opaque-wire-attribute"),
            std::string::npos);
}

TEST(InternerFlood, PapRegistrationFailsClosedOnceSaturated) {
  common::ManualClock clock;
  pap::PolicyRepository repo(clock);

  // Trusted registration interns; under saturation it fails whole, and
  // the allowlist is not partially updated.
  InternerSaturation saturated;
  const auto outcome = repo.register_attribute_names(
      "hospital-a", {"fresh-vocab-after-flood"}, "admin");
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(repo.attribute_allowlist("hospital-a"), nullptr);
}

TEST(InternerFlood, PapAllowlistGatesWireRequestsAtThePdpService) {
  common::ManualClock clock;
  pap::PolicyRepository repo(clock);
  ASSERT_TRUE(repo.register_attribute_names(
                      "hospital-a",
                      {core::attrs::kSubjectId, core::attrs::kResourceId,
                       core::attrs::kActionId, core::attrs::kRole},
                      "admin")
                  .ok);
  EXPECT_TRUE(repo.attribute_allowed("hospital-a", core::attrs::kRole));
  EXPECT_FALSE(repo.attribute_allowed("hospital-a", "smuggled-attribute"));
  // A domain that registered nothing stays open.
  EXPECT_TRUE(repo.attribute_allowed("hospital-b", "anything"));

  // Wire it to a PdpService: requests naming attributes outside the
  // domain vocabulary are rejected before evaluation.
  net::Simulator sim;
  net::Network network(sim);
  network.set_default_link({10, 0, 0.0});
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "permit-reads";
  p.target_spec.require(core::Category::kAction, core::attrs::kActionId,
                        core::AttributeValue("read"));
  core::Rule r;
  r.id = "permit";
  r.effect = core::Effect::kPermit;
  p.rules.push_back(std::move(r));
  store->add(std::move(p));

  pep::PdpService service(network, "hospital-a/pdp",
                          std::make_shared<core::Pdp>(store));
  service.set_attribute_name_filter(
      [&](std::string_view name) { return repo.attribute_allowed("hospital-a", name); });
  net::RpcNode client(network, "peer");

  std::optional<std::string> ok_response;
  client.call("hospital-a/pdp", pep::kAuthzRequestType,
              core::request_to_string(core::RequestContext::make("alice", "doc", "read")),
              1000, [&](std::optional<std::string> r) { ok_response = r; });
  std::optional<std::string> rejected_response;
  client.call("hospital-a/pdp", pep::kAuthzRequestType,
              wire_request("smuggled-attribute", "x"), 1000,
              [&](std::optional<std::string> r) { rejected_response = r; });
  sim.run();

  ASSERT_TRUE(ok_response.has_value());
  EXPECT_TRUE(core::decision_from_string(*ok_response).is_permit());
  ASSERT_TRUE(rejected_response.has_value());
  const core::Decision rejected = core::decision_from_string(*rejected_response);
  EXPECT_TRUE(rejected.is_indeterminate());
  EXPECT_EQ(rejected.status.code, core::StatusCode::kSyntaxError);
  EXPECT_EQ(service.requests_rejected_by_filter(), 1u);
}

}  // namespace
}  // namespace mdac
