// Content-based access control via obligations (paper §3.1, "Context and
// Content-Based Access to Resources"): "when a resource is requested then
// access ... may be granted with the obligation to check content of the
// resource" — the PDP cannot see dynamic content, so it delegates the
// content check to the PEP as an obligation.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/pdp.hpp"
#include "pep/pep.hpp"

namespace mdac {
namespace {

/// A tiny document store standing in for the Web Service's resources.
class DocumentStore {
 public:
  void put(const std::string& id, std::string content) {
    documents_[id] = std::move(content);
  }
  const std::string* get(const std::string& id) const {
    const auto it = documents_.find(id);
    return it == documents_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, std::string> documents_;
};

class ContentAccessTest : public ::testing::Test {
 protected:
  ContentAccessTest() {
    documents_.put("report-1", "quarterly results, nothing sensitive");
    documents_.put("report-2", "contains PATIENT-DATA records, handle with care");

    // Policy: reports are readable, with the obligation to scan content
    // for the marker the policy names; the marker is a policy-side
    // parameter, so compliance can change it without touching the PEP.
    auto store = std::make_shared<core::PolicyStore>();
    core::Policy p;
    p.policy_id = "reports";
    core::Rule permit;
    permit.id = "permit-reports-with-scan";
    permit.effect = core::Effect::kPermit;
    core::Target t;
    t.require_any(core::Category::kResource, core::attrs::kResourceId,
                  {core::AttributeValue("report-1"), core::AttributeValue("report-2")});
    permit.target = std::move(t);

    core::ObligationExpr scan;
    scan.id = "content-check";
    scan.fulfill_on = core::Effect::kPermit;
    core::AttributeAssignmentExpr marker;
    marker.attribute_id = "forbidden-marker";
    marker.expr = core::lit("PATIENT-DATA");
    scan.assignments.push_back(std::move(marker));
    core::AttributeAssignmentExpr which;
    which.attribute_id = "resource";
    which.expr = core::make_apply(
        "one-and-only", core::designator(core::Category::kResource,
                                         core::attrs::kResourceId,
                                         core::DataType::kString));
    scan.assignments.push_back(std::move(which));
    permit.obligations.push_back(std::move(scan));
    p.rules.push_back(std::move(permit));
    store->add(std::move(p));
    pdp_ = std::make_shared<core::Pdp>(store);

    pep_ = std::make_unique<pep::EnforcementPoint>(
        [this](const core::RequestContext& request) {
          return pdp_->evaluate(request);
        });
    pep_->register_obligation_handler(
        "content-check", [this](const core::ObligationInstance& ob) {
          std::string marker, resource;
          for (const auto& [key, value] : ob.assignments) {
            if (key == "forbidden-marker") marker = value.to_text();
            if (key == "resource") resource = value.to_text();
          }
          const std::string* content = documents_.get(resource);
          if (content == nullptr) return false;  // nothing to check: refuse
          ++scans_;
          return content->find(marker) == std::string::npos;
        });
  }

  DocumentStore documents_;
  std::shared_ptr<core::Pdp> pdp_;
  std::unique_ptr<pep::EnforcementPoint> pep_;
  int scans_ = 0;
};

TEST_F(ContentAccessTest, CleanContentReleased) {
  const auto result =
      pep_->enforce(core::RequestContext::make("alice", "report-1", "read"));
  EXPECT_TRUE(result.allowed);
  EXPECT_EQ(scans_, 1);
}

TEST_F(ContentAccessTest, SensitiveContentBlockedDespitePermit) {
  // The PDP said permit — only the content check stops the release.
  const auto result =
      pep_->enforce(core::RequestContext::make("alice", "report-2", "read"));
  EXPECT_FALSE(result.allowed);
  EXPECT_TRUE(result.decision.is_permit());
  EXPECT_NE(result.reason.find("content-check"), std::string::npos);
}

TEST_F(ContentAccessTest, ContentChangesFlipTheOutcome) {
  documents_.put("report-1", "now with PATIENT-DATA inside");
  EXPECT_FALSE(
      pep_->enforce(core::RequestContext::make("alice", "report-1", "read")).allowed);
  documents_.put("report-2", "redacted, all clear");
  EXPECT_TRUE(
      pep_->enforce(core::RequestContext::make("alice", "report-2", "read")).allowed);
}

TEST_F(ContentAccessTest, MissingDocumentFailsSafe) {
  // Target admits only report-1/2, so use a doctored request carrying a
  // second resource-id value the target matches; the handler then cannot
  // find a single document -> refuse.
  documents_.put("report-1", "");
  auto request = core::RequestContext::make("alice", "report-1", "read");
  EXPECT_TRUE(pep_->enforce(request).allowed);  // empty content is clean

  // Remove the document entirely (simulate a race with deletion).
  DocumentStore empty;
  documents_ = empty;
  EXPECT_FALSE(pep_->enforce(request).allowed);
}

TEST_F(ContentAccessTest, PolicySideMarkerIsAuthoritative) {
  // The obligation's parameters came from the policy, not the PEP:
  // verify they arrive intact through evaluation.
  const core::Decision d =
      pdp_->evaluate(core::RequestContext::make("alice", "report-2", "read"));
  ASSERT_TRUE(d.is_permit());
  ASSERT_EQ(d.obligations.size(), 1u);
  EXPECT_EQ(d.obligations[0].id, "content-check");
  bool saw_marker = false;
  for (const auto& [key, value] : d.obligations[0].assignments) {
    if (key == "forbidden-marker") {
      EXPECT_EQ(value.to_text(), "PATIENT-DATA");
      saw_marker = true;
    }
  }
  EXPECT_TRUE(saw_marker);
}

}  // namespace
}  // namespace mdac
