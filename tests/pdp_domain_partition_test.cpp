// Cross-domain equivalence and routing tests for the domain-partitioned
// PDP index (PR 2 tentpole). The partitioned index is a pure
// optimisation: for every request — naming zero, one or several
// administrative domains — the decision must equal the flat index's and
// the unindexed linear scan's, while the probe counters show that only
// the named domains' partitions were touched. Policy shapes mirror the
// examples: virtual_organisation (per-domain subject-domain /
// resource-domain policies, a domain ban) and healthcare_federation
// (domain-less record policies that live in the global partition).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/pdp.hpp"
#include "core/serialization.hpp"

namespace mdac::core {
namespace {

Policy permit_domain_role(const std::string& domain, const std::string& role,
                          const std::string& action) {
  Policy p;
  p.policy_id = domain + ":permit-" + role + "-" + action;
  p.rule_combining = "first-applicable";
  p.target_spec.require(Category::kSubject, attrs::kSubjectDomain,
                        AttributeValue(domain));
  p.target_spec.require(Category::kSubject, attrs::kRole, AttributeValue(role));
  Rule permit;
  permit.id = p.policy_id + ":permit";
  permit.effect = Effect::kPermit;
  Target t;
  t.require(Category::kAction, attrs::kActionId, AttributeValue(action));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  return p;
}

Policy deny_foreign_domain(const std::string& home, const std::string& banned) {
  // The virtual_organisation "firm-local-ban" shape: a domain refuses
  // subjects asserted by another domain.
  Policy p;
  p.policy_id = home + ":ban-" + banned;
  p.target_spec.require(Category::kSubject, attrs::kSubjectDomain,
                        AttributeValue(banned));
  Rule deny;
  deny.id = p.policy_id + ":deny";
  deny.effect = Effect::kDeny;
  p.rules.push_back(std::move(deny));
  return p;
}

Policy record_policy(const std::string& resource, const std::string& role) {
  // The healthcare_federation "record-oversight" shape: no domain
  // conjunct — applies federation-wide, so it must live in the global
  // partition and stay a candidate for every request.
  Policy p;
  p.policy_id = "vo:" + resource + "-" + role;
  p.rule_combining = "first-applicable";
  p.target_spec.require(Category::kResource, attrs::kResourceId,
                        AttributeValue(resource));
  Rule permit;
  permit.id = p.policy_id + ":permit";
  permit.effect = Effect::kPermit;
  Target t;
  t.require(Category::kSubject, attrs::kRole, AttributeValue(role));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  return p;
}

/// The federation fixture: a healthcare-flavoured VO of hospitals plus
/// lab/university domains from the virtual-organisation example.
std::shared_ptr<PolicyStore> federation_store(const std::vector<std::string>& domains) {
  auto store = std::make_shared<PolicyStore>();
  for (const std::string& d : domains) {
    store->add(permit_domain_role(d, "doctor", "read"));
    store->add(permit_domain_role(d, "doctor", "write"));
    store->add(permit_domain_role(d, "nurse", "read"));
  }
  store->add(deny_foreign_domain(domains.front(), "university"));
  store->add(record_policy("medical-record", "doctor"));
  store->add(record_policy("vo-dataset", "researcher"));
  return store;
}

RequestContext request_naming(const std::vector<std::string>& subject_domains,
                              const std::string& role, const std::string& resource,
                              const std::string& action,
                              const std::string& resource_domain = "") {
  RequestContext req = RequestContext::make("subject", resource, action);
  req.add(Category::kSubject, attrs::kRole, AttributeValue(role));
  for (const std::string& d : subject_domains) {
    req.add(Category::kSubject, attrs::kSubjectDomain, AttributeValue(d));
  }
  if (!resource_domain.empty()) {
    req.add(Category::kResource, attrs::kResourceDomain,
            AttributeValue(resource_domain));
  }
  return req;
}

const std::vector<std::string> kDomains = {"hospital-a", "hospital-b",
                                           "research-lab", "university"};

/// Every request shape the federation sees: zero, one and multiple
/// domains; known and unknown domains; global-partition-only traffic.
std::vector<RequestContext> request_sweep() {
  std::vector<RequestContext> sweep;
  // Zero domains named: only global-partition policies can apply.
  sweep.push_back(request_naming({}, "doctor", "medical-record", "read"));
  sweep.push_back(request_naming({}, "researcher", "vo-dataset", "read"));
  sweep.push_back(request_naming({}, "auditor", "vo-dataset", "delete"));
  // One domain.
  for (const std::string& d : kDomains) {
    sweep.push_back(request_naming({d}, "doctor", "medical-record", "read"));
    sweep.push_back(request_naming({d}, "nurse", "medical-record", "write"));
    sweep.push_back(request_naming({d}, "intern", "vo-dataset", "read"));
  }
  // Multiple domains (multi-valued subject-domain, plus a resource
  // domain): the cross-domain shape.
  sweep.push_back(
      request_naming({"hospital-a", "hospital-b"}, "doctor", "medical-record", "read"));
  sweep.push_back(request_naming({"university"}, "researcher", "vo-dataset", "read",
                                 /*resource_domain=*/"research-lab"));
  sweep.push_back(request_naming({"hospital-a", "university"}, "doctor",
                                 "medical-record", "write"));
  // Unknown domain: no partition exists for it.
  sweep.push_back(request_naming({"rogue-domain"}, "doctor", "medical-record", "read"));
  return sweep;
}

TEST(PdpDomainPartition, DecisionsMatchFlatIndexAndLinearScan) {
  auto store = federation_store(kDomains);

  Pdp partitioned(store);  // partition_by_domain defaults to true
  PdpConfig flat_cfg;
  flat_cfg.partition_by_domain = false;
  Pdp flat(store, flat_cfg);
  PdpConfig scan_cfg;
  scan_cfg.use_target_index = false;
  Pdp scan(store, scan_cfg);

  // The index builds lazily on first evaluation.
  (void)partitioned.evaluate(request_sweep().front());
  (void)flat.evaluate(request_sweep().front());
  EXPECT_EQ(partitioned.partition_count(), kDomains.size());
  EXPECT_EQ(flat.partition_count(), 0u);

  for (const RequestContext& req : request_sweep()) {
    const Decision a = partitioned.evaluate(req);
    const Decision b = flat.evaluate(req);
    const Decision c = scan.evaluate(req);
    EXPECT_EQ(a.type, b.type) << request_to_string(req);
    EXPECT_EQ(a.type, c.type) << request_to_string(req);
    EXPECT_EQ(a.extent, b.extent) << request_to_string(req);
  }
}

TEST(PdpDomainPartition, RequestsTouchOnlyTheDomainsTheyName) {
  auto store = federation_store(kDomains);
  Pdp pdp(store);

  // Zero domains named: no per-domain partition is probed.
  auto r = pdp.evaluate_with_metrics(
      request_naming({}, "doctor", "medical-record", "read"));
  EXPECT_EQ(r.partitions_probed, 0u);
  EXPECT_TRUE(r.decision.is_permit());  // the global record policy applies

  // One domain: exactly one partition probed, and every other domain's
  // policies are skipped without a target evaluation.
  r = pdp.evaluate_with_metrics(
      request_naming({"hospital-b"}, "doctor", "medical-record", "read"));
  EXPECT_EQ(r.partitions_probed, 1u);
  // 3 per-domain policies for each of the 3 other domains, plus the ban
  // (university partition) are never candidates.
  EXPECT_GE(r.candidates_skipped, 3u * (kDomains.size() - 1));

  // Two distinct domains: two partitions.
  r = pdp.evaluate_with_metrics(request_naming({"hospital-a", "hospital-b"}, "doctor",
                                               "medical-record", "read"));
  EXPECT_EQ(r.partitions_probed, 2u);

  // Subject and resource domain naming the same domain: deduplicated.
  r = pdp.evaluate_with_metrics(request_naming({"research-lab"}, "researcher",
                                               "vo-dataset", "read",
                                               /*resource_domain=*/"research-lab"));
  EXPECT_EQ(r.partitions_probed, 1u);

  // Unknown domain: nothing to probe.
  r = pdp.evaluate_with_metrics(
      request_naming({"rogue-domain"}, "doctor", "medical-record", "read"));
  EXPECT_EQ(r.partitions_probed, 0u);

  // The cumulative counter saw every probe above.
  EXPECT_EQ(pdp.partition_probes(), 4u);
}

TEST(PdpDomainPartition, DomainBanStillDeniesThroughItsPartition) {
  // The firm-local-ban shape: the ban's only conjunct is the domain
  // attribute itself, so it is indexed by it inside the partition.
  auto store = federation_store(kDomains);
  Pdp pdp(store);

  const Decision banned = pdp.evaluate(
      request_naming({"university"}, "doctor", "medical-record", "read"));
  EXPECT_TRUE(banned.is_deny());

  PdpConfig flat_cfg;
  flat_cfg.partition_by_domain = false;
  Pdp flat(store, flat_cfg);
  EXPECT_TRUE(flat.evaluate(request_naming({"university"}, "doctor", "medical-record",
                                           "read"))
                  .is_deny());
}

TEST(PdpDomainPartition, StoreMutationRebuildsPartitions) {
  auto store = federation_store(kDomains);
  Pdp pdp(store);
  (void)pdp.evaluate(request_naming({}, "doctor", "medical-record", "read"));
  EXPECT_EQ(pdp.partition_count(), kDomains.size());

  store->add(permit_domain_role("new-clinic", "doctor", "read"));
  auto r = pdp.evaluate_with_metrics(
      request_naming({"new-clinic"}, "doctor", "medical-record", "read"));
  EXPECT_EQ(pdp.partition_count(), kDomains.size() + 1);
  EXPECT_EQ(r.partitions_probed, 1u);
}

TEST(PdpDomainPartition, DisjunctiveDomainConjunctLandsInEveryPartition) {
  // domain in {a, b} must be reachable from requests naming either.
  auto store = std::make_shared<PolicyStore>();
  Policy p;
  p.policy_id = "either-hospital";
  p.rule_combining = "first-applicable";
  p.target_spec.require_any(Category::kSubject, attrs::kSubjectDomain,
                            {AttributeValue("hospital-a"), AttributeValue("hospital-b")});
  Rule permit;
  permit.id = "permit";
  permit.effect = Effect::kPermit;
  p.rules.push_back(std::move(permit));
  store->add(std::move(p));

  Pdp pdp(store);
  EXPECT_TRUE(
      pdp.evaluate(request_naming({"hospital-a"}, "any", "r", "read")).is_permit());
  EXPECT_TRUE(
      pdp.evaluate(request_naming({"hospital-b"}, "any", "r", "read")).is_permit());
  EXPECT_TRUE(pdp.evaluate(request_naming({"hospital-c"}, "any", "r", "read"))
                  .is_not_applicable());
  // Naming both probes both partitions but evaluates the policy once.
  const auto r = pdp.evaluate_with_metrics(
      request_naming({"hospital-a", "hospital-b"}, "any", "r", "read"));
  EXPECT_EQ(r.partitions_probed, 2u);
  EXPECT_TRUE(r.decision.is_permit());
}

}  // namespace
}  // namespace mdac::core
