// mdac::obs — unified metrics registry and decision tracer.
//
//   * Registry unit behaviour: owned instruments (idempotent
//     registration, type-mismatch refusal, sharded counters),
//     collectors, label escaping, stable exposition ordering.
//   * DecisionTracer: head-sampling cadence, explain ring wrap and
//     eviction accounting, queries, rendering.
//   * Golden-file exposition: one registry covering EVERY adapted
//     subsystem (engine, cache, dispatch + breakers, heartbeat, PAP
//     audit ring, tracer self-telemetry) driven by a deterministic
//     workload, compared byte-for-byte against
//     tests/golden/metrics_exposition.prom. Regenerate with
//       MDAC_UPDATE_GOLDEN=1 ./obs_test --gtest_filter='*Golden*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cache/decision_cache.hpp"
#include "common/clock.hpp"
#include "core/serialization.hpp"
#include "dependability/heartbeat.hpp"
#include "dependability/replicated_pdp.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pap/repository.hpp"
#include "runtime/engine.hpp"
#include "runtime/snapshot.hpp"

namespace mdac::obs {
namespace {

// ---------------------------------------------------------------------
// Registry: owned instruments
// ---------------------------------------------------------------------

TEST(RegistryTest, CounterGaugeHistogramRoundTrip) {
  Registry registry;
  Counter& c = registry.counter("mdac_test_ops_total", "Ops.");
  c.add(3);
  c.increment();
  EXPECT_EQ(c.value(), 4u);

  Gauge& g = registry.gauge("mdac_test_depth", "Depth.");
  g.set(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);

  Histogram& h = registry.histogram("mdac_test_latency", "Latency.");
  h.observe(1);
  h.observe(1000);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.total, 2u);
  EXPECT_EQ(s.sum, 1001u);
}

TEST(RegistryTest, ShardedCounterSumsAcrossCells) {
  Registry registry;
  Counter& c =
      registry.counter("mdac_test_sharded_total", "Sharded.", {}, /*shards=*/4);
  for (std::size_t shard = 0; shard < 4; ++shard) c.add(10, shard);
  c.add(5, /*shard=*/99);  // out-of-range shards fold into cell 0
  EXPECT_EQ(c.value(), 45u);
}

TEST(RegistryTest, RegistrationIsIdempotentByNameAndLabels) {
  Registry registry;
  Counter& a = registry.counter("mdac_test_total", "Help.", {{"k", "v"}});
  Counter& b = registry.counter("mdac_test_total", "Help.", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  // A different label set is a different instrument.
  Counter& c = registry.counter("mdac_test_total", "Help.", {{"k", "w"}});
  EXPECT_NE(&a, &c);
}

TEST(RegistryTest, TypeMismatchOnOneNameThrows) {
  Registry registry;
  registry.counter("mdac_test_value", "Help.");
  EXPECT_THROW(registry.gauge("mdac_test_value", "Help."), std::logic_error);
  EXPECT_THROW(registry.histogram("mdac_test_value", "Help."), std::logic_error);
}

TEST(RegistryTest, LabelValuesAreEscaped) {
  EXPECT_EQ(render_label_block({{"path", "a\\b\"c\nd"}}),
            "{path=\"a\\\\b\\\"c\\nd\"}");
  EXPECT_EQ(render_label_block({}), "");
}

TEST(RegistryTest, ExpositionOrderingIsStable) {
  Registry registry;
  // Registered out of order on purpose: exposition sorts families by
  // name and samples by label block.
  registry.counter("mdac_zz_total", "Last.").add(1);
  registry.counter("mdac_aa_total", "First.", {{"x", "2"}}).add(2);
  registry.counter("mdac_aa_total", "First.", {{"x", "1"}}).add(1);
  const std::string page = registry.expose();
  const std::size_t aa = page.find("mdac_aa_total{x=\"1\"} 1");
  const std::size_t aa2 = page.find("mdac_aa_total{x=\"2\"} 2");
  const std::size_t zz = page.find("mdac_zz_total 1");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(aa2, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, aa2);
  EXPECT_LT(aa2, zz);
  // HELP/TYPE appear exactly once per family.
  EXPECT_EQ(page.find("# HELP mdac_aa_total"), page.rfind("# HELP mdac_aa_total"));
}

TEST(RegistryTest, CollectorsReportFreshValuesAndCanBeRemoved) {
  Registry registry;
  int value = 1;
  const std::uint64_t id = registry.add_collector([&value](MetricSink& sink) {
    sink.counter("mdac_pull_total", "Pulled.", static_cast<double>(value));
  });
  EXPECT_NE(registry.expose().find("mdac_pull_total 1"), std::string::npos);
  value = 2;
  EXPECT_NE(registry.expose().find("mdac_pull_total 2"), std::string::npos);
  registry.remove_collector(id);
  EXPECT_EQ(registry.expose().find("mdac_pull_total"), std::string::npos);
}

// ---------------------------------------------------------------------
// DecisionTracer
// ---------------------------------------------------------------------

TEST(DecisionTracerTest, HeadSamplingCadence) {
  DecisionTracer tracer(ObsConfig{.sample_every_n = 3});
  std::size_t sampled = 0;
  for (int i = 0; i < 9; ++i) {
    const TraceHandle h = tracer.admit();
    EXPECT_NE(h.id, 0u);
    if (h.sampled) ++sampled;
  }
  EXPECT_EQ(sampled, 3u);
  EXPECT_EQ(tracer.admitted_total(), 9u);
  EXPECT_EQ(tracer.sampled_total(), 3u);
  // sample_every_n = 0 disables head sampling entirely.
  DecisionTracer off(ObsConfig{.sample_every_n = 0});
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(off.admit().sampled);
}

Trace make_trace(std::uint64_t id, std::uint64_t latency_ns, TraceOutcome outcome) {
  Trace t;
  t.trace_id = id;
  t.started_ns = 1000;
  t.finished_ns = 1000 + latency_ns;
  t.outcome = outcome;
  t.record(SpanKind::kAdmission, t.started_ns);
  t.record(SpanKind::kOutcome, t.finished_ns);
  return t;
}

TEST(DecisionTracerTest, RingWrapsAndCountsEvictions) {
  DecisionTracer tracer(ObsConfig{.ring_capacity = 4});
  for (std::uint64_t i = 1; i <= 10; ++i) {
    tracer.publish(make_trace(i, i * 100, TraceOutcome::kDecided));
  }
  EXPECT_EQ(tracer.published_total(), 10u);
  EXPECT_EQ(tracer.ring_dropped_total(), 6u);
  EXPECT_EQ(tracer.traces().size(), 4u);
  // The newest four survive; the evicted ones are gone.
  EXPECT_TRUE(tracer.find(10).has_value());
  EXPECT_TRUE(tracer.find(7).has_value());
  EXPECT_FALSE(tracer.find(6).has_value());
}

TEST(DecisionTracerTest, QueriesByOutcomeAndWorstLatency) {
  DecisionTracer tracer(ObsConfig{.ring_capacity = 8});
  tracer.publish(make_trace(1, 500, TraceOutcome::kDecided));
  tracer.publish(make_trace(2, 9000, TraceOutcome::kShedQueueFull));
  tracer.publish(make_trace(3, 2000, TraceOutcome::kDecided));
  const auto worst = tracer.worst_latency();
  ASSERT_TRUE(worst.has_value());
  EXPECT_EQ(worst->trace_id, 2u);
  const auto sheds = tracer.with_outcome(TraceOutcome::kShedQueueFull);
  ASSERT_EQ(sheds.size(), 1u);
  EXPECT_EQ(sheds.front().trace_id, 2u);
  EXPECT_EQ(tracer.with_outcome(TraceOutcome::kFailsafe).size(), 0u);
}

TEST(DecisionTracerTest, SpanOverflowIsCountedNotFatal) {
  Trace t;
  for (std::size_t i = 0; i < Trace::kMaxSpans + 3; ++i) {
    t.record(SpanKind::kEvaluate, i);
  }
  EXPECT_EQ(t.span_count, Trace::kMaxSpans);
  EXPECT_EQ(t.spans_dropped, 3u);
}

TEST(DecisionTracerTest, RenderShowsIdOutcomeAndSpans) {
  Trace t = make_trace(0xabcdef, 1500, TraceOutcome::kDecided);
  t.decision = core::DecisionType::kPermit;
  t.worker = 2;
  t.snapshot_version = 7;
  const std::string text = render(t);
  EXPECT_NE(text.find("0000000000abcdef"), std::string::npos);
  EXPECT_NE(text.find("decided"), std::string::npos);
  EXPECT_NE(text.find("permit"), std::string::npos);
  EXPECT_NE(text.find("admission"), std::string::npos);
  EXPECT_NE(text.find("worker=2"), std::string::npos);
}

// ---------------------------------------------------------------------
// Golden-file Prometheus exposition across every adapted subsystem
// ---------------------------------------------------------------------

std::shared_ptr<core::Pdp> permit_reads_pdp() {
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "permit-reads";
  p.rule_combining = "first-applicable";
  core::Rule permit;
  permit.id = "permit-read";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kAction, core::attrs::kActionId,
            core::AttributeValue("read"));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  core::Rule deny;
  deny.id = "deny-rest";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  store->add(std::move(p));
  return std::make_shared<core::Pdp>(store);
}

std::string simple_policy_xml(const std::string& id) {
  core::Policy p;
  p.policy_id = id;
  core::Rule r;
  r.id = "permit-all";
  r.effect = core::Effect::kPermit;
  p.rules.push_back(std::move(r));
  return core::node_to_string(p);
}

TEST(GoldenExpositionTest, FullRegistryMatchesGoldenFile) {
  // Every input below is deterministic: the dispatch workload runs on
  // the seeded network simulator (virtual time), the engine takes no
  // traffic (zeros are deterministic), and the PAP uses a ManualClock.
  obs::Registry registry;

  // Escaping demo pinned in the golden output.
  registry.counter("mdac_example_escapes_total", "Label escaping demo.",
                   {{"path", "a\\b\"c\nd"}})
      .add(1);

  // PAP with a wrapping audit ring: 2 policies x (submit + issue) = 4
  // entries through a capacity-2 ring -> 2 drops.
  common::ManualClock clock;
  pap::PapConfig pap_config;
  pap_config.lint_on_issue = false;
  pap_config.audit_capacity = 2;
  pap::PolicyRepository repo(clock, pap_config);
  ASSERT_TRUE(repo.submit(simple_policy_xml("p1"), "author"));
  ASSERT_TRUE(repo.issue("p1", "admin"));
  ASSERT_TRUE(repo.submit(simple_policy_xml("p2"), "author"));
  ASSERT_TRUE(repo.issue("p2", "admin"));
  repo.register_metrics(registry);

  // Engine + two-level cache, no traffic.
  runtime::SnapshotPublisher publisher;
  cache::DecisionCache cache(cache::DecisionCache::TwoLevelConfig{.capacity = 64});
  runtime::EngineConfig engine_config;
  engine_config.workers = 2;
  engine_config.queue_capacity = 8;
  runtime::DecisionEngine engine(publisher, engine_config, &cache);
  engine.register_metrics(registry);
  cache.register_metrics(registry);

  // Dispatch over a dead primary: one timeout, one failover decide —
  // exact counts fixed by the simulator.
  net::Simulator sim;
  net::Network network(sim);
  network.set_default_link({10, 0, 0.0});
  auto pdp = permit_reads_pdp();
  dependability::PdpReplica r0(network, "pdp/0", pdp);
  dependability::PdpReplica r1(network, "pdp/1", pdp);
  r0.set_up(false);
  obs::DecisionTracer tracer(obs::ObsConfig{.sample_every_n = 1});
  dependability::DispatchConfig dispatch_config;
  dispatch_config.tracer = &tracer;
  dependability::ReplicatedPdpClient client(
      network, "pep", {"pdp/0", "pdp/1"},
      dependability::DispatchStrategy::kFailover, dispatch_config);
  std::optional<core::Decision> got;
  client.evaluate(core::RequestContext::make("alice", "doc", "read"),
                  [&](core::Decision d) { got = std::move(d); });
  sim.run();
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->is_permit());
  client.register_metrics(registry);
  tracer.register_metrics(registry);

  // Heartbeat monitor, constructed but not started: liveness gauges
  // report down, probe counters zero.
  dependability::HeartbeatMonitor monitor(network, "monitor", {"pdp/0", "pdp/1"},
                                          100, 50);
  monitor.register_metrics(registry);

  const std::string page = registry.expose();
  const std::string golden_path =
      std::string(MDAC_TEST_SOURCE_DIR) + "/golden/metrics_exposition.prom";
  if (std::getenv("MDAC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << page;
    GTEST_SKIP() << "golden file regenerated: " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (regenerate with MDAC_UPDATE_GOLDEN=1)";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(page, buffer.str())
      << "exposition drifted from tests/golden/metrics_exposition.prom; "
         "if the change is intentional, regenerate with MDAC_UPDATE_GOLDEN=1";

  // The acceptance sweep: every adapted subsystem shows up in one page.
  for (const char* needle :
       {"mdac_engine_submitted_total", "mdac_engine_latency_ns_bucket",
        "mdac_cache_size", "mdac_dispatch_requests_total",
        "mdac_dispatch_tries_by_replica_total", "mdac_breaker_open",
        "mdac_heartbeat_probes_sent_total", "mdac_heartbeat_alive",
        "mdac_pap_dropped_audit_entries_total", "mdac_obs_traces_admitted_total"}) {
    EXPECT_NE(page.find(needle), std::string::npos) << "missing " << needle;
  }
}

}  // namespace
}  // namespace mdac::obs
