#include <gtest/gtest.h>

#include "tokens/assertion.hpp"
#include "tokens/attribute_certificate.hpp"

namespace mdac::tokens {
namespace {

Assertion sample_assertion() {
  Assertion a;
  a.assertion_id = "assertion-1";
  a.issuer = "cn=idp,o=domain-a";
  a.subject = "alice";
  a.issue_instant = 1000;
  a.conditions.not_before = 1000;
  a.conditions.not_on_or_after = 2000;
  a.conditions.audience = "domain-b";
  a.attributes["role"] =
      core::Bag::of({core::AttributeValue("doctor"), core::AttributeValue("surgeon")});
  a.attributes["clearance"] = core::Bag(core::AttributeValue(std::int64_t{2}));
  a.authz = AuthzDecisionStatement{"record-7", "read", core::DecisionType::kPermit};
  return a;
}

// ---------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------

TEST(AssertionTest, XmlRoundTrip) {
  const Assertion a = sample_assertion();
  const Assertion back = Assertion::from_xml(a.to_xml());
  EXPECT_EQ(back, a);
}

TEST(AssertionTest, WireRoundTripWithSignature) {
  const auto key = crypto::KeyPair::generate("idp-key");
  const SignedAssertion signed_token = sign_assertion(sample_assertion(), key);
  const SignedAssertion back = SignedAssertion::from_wire(signed_token.to_wire());
  EXPECT_EQ(back.assertion, signed_token.assertion);
  EXPECT_EQ(back.signature, signed_token.signature);
}

TEST(AssertionTest, CanonicalFormIsStable) {
  const Assertion a = sample_assertion();
  EXPECT_EQ(a.canonical_form(), a.canonical_form());
  Assertion b = a;
  b.subject = "mallory";
  EXPECT_NE(a.canonical_form(), b.canonical_form());
}

TEST(AssertionTest, MalformedWireThrows) {
  EXPECT_THROW(SignedAssertion::from_wire("<Nope/>"), std::runtime_error);
  EXPECT_THROW(SignedAssertion::from_wire("<SignedAssertion/>"), std::runtime_error);
  EXPECT_THROW(Assertion::from_xml(xml::parse("<Assertion/>")), std::runtime_error);
}

// ---------------------------------------------------------------------
// Validation — every failure mode the capability architecture relies on
// ---------------------------------------------------------------------

class AssertionValidationTest : public ::testing::Test {
 protected:
  AssertionValidationTest() : key_(crypto::KeyPair::generate("issuer")) {
    trust_.add_trusted_key(key_);
  }
  crypto::KeyPair key_;
  crypto::TrustStore trust_;
};

TEST_F(AssertionValidationTest, ValidToken) {
  const auto token = sign_assertion(sample_assertion(), key_);
  EXPECT_EQ(validate(token, trust_, 1500, "domain-b"), TokenValidity::kValid);
}

TEST_F(AssertionValidationTest, ExpiredToken) {
  const auto token = sign_assertion(sample_assertion(), key_);
  EXPECT_EQ(validate(token, trust_, 2000, "domain-b"), TokenValidity::kExpired);
  EXPECT_EQ(validate(token, trust_, 99999, "domain-b"), TokenValidity::kExpired);
}

TEST_F(AssertionValidationTest, NotYetValidToken) {
  const auto token = sign_assertion(sample_assertion(), key_);
  EXPECT_EQ(validate(token, trust_, 500, "domain-b"), TokenValidity::kNotYetValid);
}

TEST_F(AssertionValidationTest, WrongAudience) {
  const auto token = sign_assertion(sample_assertion(), key_);
  EXPECT_EQ(validate(token, trust_, 1500, "domain-c"),
            TokenValidity::kWrongAudience);
  EXPECT_EQ(validate(token, trust_, 1500, ""), TokenValidity::kWrongAudience);
}

TEST_F(AssertionValidationTest, UnrestrictedAudienceAcceptedAnywhere) {
  Assertion a = sample_assertion();
  a.conditions.audience.clear();
  const auto token = sign_assertion(std::move(a), key_);
  EXPECT_EQ(validate(token, trust_, 1500, "any-domain"), TokenValidity::kValid);
}

TEST_F(AssertionValidationTest, TamperedAttributesDetected) {
  auto token = sign_assertion(sample_assertion(), key_);
  token.assertion.attributes["role"] = core::Bag(core::AttributeValue("root"));
  EXPECT_EQ(validate(token, trust_, 1500, "domain-b"), TokenValidity::kBadSignature);
}

TEST_F(AssertionValidationTest, TamperedValidityWindowDetected) {
  auto token = sign_assertion(sample_assertion(), key_);
  token.assertion.conditions.not_on_or_after = 999999;  // extend lifetime
  EXPECT_EQ(validate(token, trust_, 5000, "domain-b"), TokenValidity::kBadSignature);
}

TEST_F(AssertionValidationTest, UntrustedIssuerRejected) {
  const auto rogue = crypto::KeyPair::generate("rogue");
  const auto token = sign_assertion(sample_assertion(), rogue);
  EXPECT_EQ(validate(token, trust_, 1500, "domain-b"),
            TokenValidity::kUntrustedIssuer);
}

TEST_F(AssertionValidationTest, SurvivesWireRoundTrip) {
  const auto token = sign_assertion(sample_assertion(), key_);
  const auto back = SignedAssertion::from_wire(token.to_wire());
  EXPECT_EQ(validate(back, trust_, 1500, "domain-b"), TokenValidity::kValid);
}

// ---------------------------------------------------------------------
// Attribute certificates (VOMS-style)
// ---------------------------------------------------------------------

TEST(FqanTest, TextRoundTrip) {
  const Fqan with_role{"/vo-physics/analysis", "submitter"};
  EXPECT_EQ(with_role.to_text(), "/vo-physics/analysis/Role=submitter");
  EXPECT_EQ(Fqan::parse(with_role.to_text()), with_role);

  const Fqan member_only{"/vo-physics", ""};
  EXPECT_EQ(member_only.to_text(), "/vo-physics");
  EXPECT_EQ(Fqan::parse("/vo-physics"), member_only);
}

class AcTest : public ::testing::Test {
 protected:
  AcTest() : key_(crypto::KeyPair::generate("voms")) {
    trust_.add_trusted_key(key_);
    ac_ = issue_attribute_certificate(
        "cn=alice", "cn=voms,o=vo-physics", 7, 100, 200,
        {Fqan{"/vo-physics", ""}, Fqan{"/vo-physics/analysis", "submitter"}}, key_);
  }
  crypto::KeyPair key_;
  crypto::TrustStore trust_;
  AttributeCertificate ac_;
};

TEST_F(AcTest, WireRoundTrip) {
  const AttributeCertificate back = AttributeCertificate::from_wire(ac_.to_wire());
  EXPECT_EQ(back.holder, ac_.holder);
  EXPECT_EQ(back.fqans, ac_.fqans);
  EXPECT_EQ(back.signature, ac_.signature);
  EXPECT_EQ(validate(back, trust_, 150), AcValidity::kValid);
}

TEST_F(AcTest, ValidationFailureModes) {
  EXPECT_EQ(validate(ac_, trust_, 150), AcValidity::kValid);
  EXPECT_EQ(validate(ac_, trust_, 50), AcValidity::kNotYetValid);
  EXPECT_EQ(validate(ac_, trust_, 250), AcValidity::kExpired);

  AttributeCertificate tampered = ac_;
  tampered.fqans.push_back(Fqan{"/vo-physics/admin", "root"});
  EXPECT_EQ(validate(tampered, trust_, 150), AcValidity::kBadSignature);

  crypto::TrustStore empty;
  EXPECT_EQ(validate(ac_, empty, 150), AcValidity::kUntrustedIssuer);
}

}  // namespace
}  // namespace mdac::tokens
