#include <gtest/gtest.h>

#include "delegation/delegation.hpp"

namespace mdac::delegation {
namespace {

// ---------------------------------------------------------------------
// Grants and reduction
// ---------------------------------------------------------------------

TEST(DelegationTest, RootIsAuthorizedEverywhere) {
  DelegationRegistry reg;
  reg.add_root("domain-admin");
  EXPECT_TRUE(reg.authorized("domain-admin", "anything/at/all"));
  EXPECT_FALSE(reg.authorized("random-user", "anything"));
}

TEST(DelegationTest, DirectGrantWithinScope) {
  DelegationRegistry reg;
  reg.add_root("admin");
  ASSERT_TRUE(reg.grant({"admin", "team-lead", "projects/*", false, 0}));
  EXPECT_TRUE(reg.authorized("team-lead", "projects/alpha"));
  EXPECT_FALSE(reg.authorized("team-lead", "finance/ledger"));
}

TEST(DelegationTest, ReductionChainIsReported) {
  DelegationRegistry reg;
  reg.add_root("admin");
  ASSERT_TRUE(reg.grant({"admin", "lead", "projects/*", true, 1}));
  ASSERT_TRUE(reg.grant({"lead", "dev", "projects/alpha", false, 0}));

  const auto chain = reg.reduction_chain("dev", "projects/alpha");
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(*chain, (std::vector<std::string>{"admin", "lead", "dev"}));
}

TEST(DelegationTest, NonRedelegableGrantStopsChain) {
  DelegationRegistry reg;
  reg.add_root("admin");
  ASSERT_TRUE(reg.grant({"admin", "lead", "projects/*", /*redelegate=*/false, 0}));
  // The lead cannot pass authority on.
  EXPECT_FALSE(reg.grant({"lead", "dev", "projects/alpha", false, 0}));
  EXPECT_FALSE(reg.authorized("dev", "projects/alpha"));
}

TEST(DelegationTest, DepthLimitEnforced) {
  DelegationRegistry reg;
  reg.add_root("admin");
  // One further hop allowed.
  ASSERT_TRUE(reg.grant({"admin", "a", "x/*", true, 1}));
  ASSERT_TRUE(reg.grant({"a", "b", "x/*", false, 0}));
  EXPECT_TRUE(reg.authorized("b", "x/1"));
  // b cannot extend the chain: a's grant to b had no redelegation budget.
  EXPECT_FALSE(reg.grant({"b", "c", "x/*", false, 0}));
}

TEST(DelegationTest, DeeperChainsNeedBudget) {
  DelegationRegistry reg;
  reg.add_root("admin");
  ASSERT_TRUE(reg.grant({"admin", "a", "x/*", true, 2}));
  ASSERT_TRUE(reg.grant({"a", "b", "x/*", true, 1}));
  ASSERT_TRUE(reg.grant({"b", "c", "x/*", false, 0}));
  EXPECT_TRUE(reg.authorized("c", "x/deep"));
  const auto chain = reg.reduction_chain("c", "x/deep");
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->size(), 4u);
}

TEST(DelegationTest, ScopeNarrowsDownChain) {
  DelegationRegistry reg;
  reg.add_root("admin");
  ASSERT_TRUE(reg.grant({"admin", "a", "projects/*", true, 1}));
  // A delegate can only pass on a scope within what it holds.
  EXPECT_TRUE(reg.grant({"a", "b", "projects/alpha", false, 0}));
  EXPECT_FALSE(reg.grant({"a", "b", "finance/*", false, 0}));
  EXPECT_FALSE(reg.grant({"a", "b", "*", false, 0}));
}

TEST(DelegationTest, SelfDelegationRejected) {
  DelegationRegistry reg;
  reg.add_root("admin");
  EXPECT_FALSE(reg.grant({"admin", "admin", "*", true, 5}));
}

TEST(DelegationTest, RevocationKillsDownstreamChains) {
  // The paper: "revocation of access control rights is also complex" in
  // decentralised administration — reduction re-checks the whole chain,
  // so revoking the middle authority kills everything below it.
  DelegationRegistry reg;
  reg.add_root("admin");
  ASSERT_TRUE(reg.grant({"admin", "a", "x/*", true, 2}));
  ASSERT_TRUE(reg.grant({"a", "b", "x/*", true, 1}));
  ASSERT_TRUE(reg.grant({"b", "c", "x/*", false, 0}));
  ASSERT_TRUE(reg.authorized("c", "x/1"));

  reg.revoke_grantee("a");
  EXPECT_FALSE(reg.authorized("a", "x/1"));
  EXPECT_FALSE(reg.authorized("b", "x/1"));
  EXPECT_FALSE(reg.authorized("c", "x/1"));
}

TEST(DelegationTest, IndependentChainSurvivesRevocation) {
  DelegationRegistry reg;
  reg.add_root("admin");
  ASSERT_TRUE(reg.grant({"admin", "a", "x/*", true, 1}));
  ASSERT_TRUE(reg.grant({"admin", "b", "x/*", false, 0}));
  ASSERT_TRUE(reg.grant({"a", "c", "x/*", false, 0}));
  reg.revoke_grantee("a");
  EXPECT_FALSE(reg.authorized("c", "x/1"));
  EXPECT_TRUE(reg.authorized("b", "x/1"));  // unrelated chain intact
}

TEST(DelegationTest, CyclicGrantsTerminate) {
  DelegationRegistry reg;
  reg.add_root("admin");
  ASSERT_TRUE(reg.grant({"admin", "a", "x/*", true, 3}));
  ASSERT_TRUE(reg.grant({"a", "b", "x/*", true, 2}));
  ASSERT_TRUE(reg.grant({"b", "a", "x/*", true, 1}));  // cycle a<->b
  // Reduction must terminate and still find the legitimate chains.
  EXPECT_TRUE(reg.authorized("a", "x/1"));
  EXPECT_TRUE(reg.authorized("b", "x/1"));
  EXPECT_FALSE(reg.authorized("c", "x/1"));
}

// ---------------------------------------------------------------------
// Reduction filtering of policy stores
// ---------------------------------------------------------------------

core::Policy issued_policy(const std::string& id, const std::string& issuer,
                           const std::string& resource) {
  core::Policy p;
  p.policy_id = id;
  p.issuer = issuer;
  if (!resource.empty()) {
    p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                          core::AttributeValue(resource));
  }
  core::Rule r;
  r.id = id + "-rule";
  r.effect = core::Effect::kPermit;
  p.rules.push_back(std::move(r));
  return p;
}

TEST(ReductionFilterTest, SplitsAcceptedAndRejected) {
  DelegationRegistry reg;
  reg.add_root("admin");
  ASSERT_TRUE(reg.grant({"admin", "partner", "shared/*", false, 0}));

  core::PolicyStore store;
  store.add(issued_policy("local", "", "anything"));               // root-authored
  store.add(issued_policy("ok", "partner", "shared/data"));        // in scope
  store.add(issued_policy("overreach", "partner", "private/hr"));  // out of scope
  store.add(issued_policy("unscoped", "partner", ""));             // unbounded
  store.add(issued_policy("stranger", "mallory", "shared/data"));  // no grant

  const ReductionFilter f = filter_by_reduction(store, reg);
  std::vector<std::string> accepted_ids;
  for (const auto* node : f.accepted) accepted_ids.push_back(node->id());
  EXPECT_EQ(accepted_ids, (std::vector<std::string>{"local", "ok"}));
  EXPECT_EQ(f.rejected_ids,
            (std::vector<std::string>{"overreach", "unscoped", "stranger"}));
}

TEST(ReductionFilterTest, RevocationFlipsAcceptance) {
  DelegationRegistry reg;
  reg.add_root("admin");
  ASSERT_TRUE(reg.grant({"admin", "partner", "shared/*", false, 0}));
  core::PolicyStore store;
  store.add(issued_policy("p", "partner", "shared/data"));
  EXPECT_EQ(filter_by_reduction(store, reg).accepted.size(), 1u);

  reg.revoke_grantee("partner");
  EXPECT_EQ(filter_by_reduction(store, reg).accepted.size(), 0u);
  EXPECT_EQ(filter_by_reduction(store, reg).rejected_ids.size(), 1u);
}

}  // namespace
}  // namespace mdac::delegation
