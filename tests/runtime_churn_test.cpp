// Concurrent policy churn against the runtime: workers evaluate at full
// rate while a PAP thread publishes snapshot after snapshot (directly,
// and through the repository lifecycle). The invariant under test is
// the runtime's consistency model: every decision is consistent with
// exactly ONE published snapshot — never a torn mix of two policy
// states — and sheds happen only at the queue bound, never because of
// churn. Designed to run under -DMDAC_TSAN=ON (see CMakeLists), where
// the publisher/worker interleavings are additionally race-checked.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/decision_cache.hpp"
#include "common/clock.hpp"
#include "core/expression.hpp"
#include "core/pdp.hpp"
#include "core/serialization.hpp"
#include "obs/trace.hpp"
#include "pap/repository.hpp"
#include "runtime/engine.hpp"
#include "runtime/snapshot.hpp"

namespace mdac::runtime {
namespace {

/// A store whose one policy stamps every permit with the snapshot
/// iteration that produced it: obligation "stamp" assigns
/// version-tag = "v<k>". A decision is then self-identifying — if a
/// worker ever evaluated against a half-updated store, the decision
/// could not equal any single snapshot's expected decision.
std::shared_ptr<core::PolicyStore> make_stamped_store(int k) {
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "probe-policy";
  core::Rule r;
  r.id = "permit-reads";
  r.effect = core::Effect::kPermit;
  core::ObligationExpr stamp;
  stamp.id = "stamp";
  stamp.fulfill_on = core::Effect::kPermit;
  stamp.assignments.push_back(
      core::AttributeAssignmentExpr{"version-tag", core::lit("v" + std::to_string(k))});
  r.obligations.push_back(std::move(stamp));
  p.rules.push_back(std::move(r));
  store->add(std::move(p));
  return store;
}

core::RequestContext probe_request() {
  return core::RequestContext::make("alice", "doc", "read");
}

/// Expected decisions per published snapshot version, recorded by the
/// PAP thread *before* each publication and read by the checker.
class ExpectedDecisions {
 public:
  void record(std::uint64_t version, core::Decision decision) {
    std::lock_guard lock(mutex_);
    by_version_[version] = std::move(decision);
  }

  std::optional<core::Decision> find(std::uint64_t version) const {
    std::lock_guard lock(mutex_);
    const auto it = by_version_.find(version);
    if (it == by_version_.end()) return std::nullopt;
    return it->second;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, core::Decision> by_version_;
};

TEST(RuntimeChurnTest, EveryDecisionMatchesExactlyOnePublishedSnapshot) {
  constexpr int kPublications = 60;
  constexpr int kRequests = 1500;

  SnapshotPublisher publisher;
  ExpectedDecisions expected;

  // First snapshot before the engine starts taking traffic, so every
  // request hits a real policy state.
  {
    auto store = make_stamped_store(1);
    core::Pdp oracle(store);
    expected.record(1, oracle.evaluate(probe_request()));
    publisher.publish(store);
  }

  EngineConfig config;
  config.workers = 4;
  config.queue_capacity = 4096;  // generous: churn must not cause sheds
  config.max_batch = 8;
  DecisionEngine engine(publisher, config);

  // The PAP thread: republish as fast as it can, recording each
  // snapshot's expected decision BEFORE it becomes current.
  std::thread pap([&] {
    for (int k = 2; k <= kPublications; ++k) {
      auto store = make_stamped_store(k);
      core::Pdp oracle(store);
      expected.record(static_cast<std::uint64_t>(k), oracle.evaluate(probe_request()));
      publisher.publish(store);
      std::this_thread::yield();
    }
  });

  // Meanwhile: full-rate submissions from the test thread, windowed so
  // the queue never reaches its bound.
  constexpr std::size_t kWindow = 512;
  std::vector<std::future<EngineResult>> inflight;
  inflight.reserve(kWindow);
  std::uint64_t max_version_seen = 0;
  std::size_t checked = 0;
  const auto check = [&](EngineResult result) {
    ASSERT_EQ(result.status, CompletionStatus::kDecided);
    ASSERT_GE(result.snapshot_version, 1u);
    // No torn reads: the decision must be byte-for-byte the expected
    // decision of the exact snapshot the worker reports serving, and
    // the stamp obligation inside it must agree (a mixed store would
    // desynchronise the two or produce an unknown stamp).
    const auto want = expected.find(result.snapshot_version);
    ASSERT_TRUE(want.has_value()) << "decision from unpublished snapshot "
                                  << result.snapshot_version;
    ASSERT_EQ(result.decision, *want);
    ASSERT_EQ(result.decision.obligations.size(), 1u);
    ASSERT_EQ(result.decision.obligations[0].assignments.size(), 1u);
    EXPECT_EQ(result.decision.obligations[0].assignments[0].second.as_string(),
              "v" + std::to_string(result.snapshot_version));
    max_version_seen = std::max(max_version_seen, result.snapshot_version);
    ++checked;
  };

  for (int i = 0; i < kRequests; ++i) {
    if (inflight.size() >= kWindow) {
      for (auto& f : inflight) check(f.get());
      inflight.clear();
    }
    inflight.push_back(engine.submit(probe_request()));
  }
  pap.join();
  // A final wave after the churn settles must observe the last snapshot.
  for (int i = 0; i < 8; ++i) inflight.push_back(engine.submit(probe_request()));
  for (auto& f : inflight) check(f.get());
  engine.shutdown();

  EXPECT_EQ(checked, static_cast<std::size_t>(kRequests) + 8);
  EXPECT_EQ(max_version_seen, static_cast<std::uint64_t>(kPublications));
  const EngineMetrics::Snapshot m = engine.metrics();
  // Churn never sheds: the queue bound is the only shedding cause.
  EXPECT_EQ(m.sheds(), 0u);
  EXPECT_EQ(m.decided, static_cast<std::uint64_t>(kRequests) + 8);
  // At least one worker re-adopted beyond its first snapshot (the churn
  // was observed); exact counts depend on scheduling.
  EXPECT_GE(m.snapshot_adoptions, 2u);
}

TEST(RuntimeChurnTest, RepositoryLifecycleChurnsThroughPublisher) {
  constexpr int kVersions = 25;

  SnapshotPublisher snapshots;
  common::ManualClock clock;  // owned by the PAP thread after start
  pap::PolicyRepository repo(clock);
  RepositoryPublisher pap_edge(repo, snapshots);

  // v1 issued before traffic starts.
  {
    auto store = make_stamped_store(1);
    ASSERT_TRUE(pap_edge.submit(
        core::node_to_string(*store->find("probe-policy")), "author"));
    ASSERT_TRUE(pap_edge.issue("probe-policy", "admin"));
  }
  ASSERT_EQ(snapshots.current_version(), 1u);

  EngineConfig config;
  config.workers = 2;
  config.queue_capacity = 2048;
  DecisionEngine engine(snapshots, config);

  // PAP thread: update (submit+issue) the policy through the repository
  // lifecycle; each successful issue republishes. Finally withdraw it.
  std::thread pap([&] {
    // EXPECT (not ASSERT) off the main thread — GTest fatal failures
    // may only abort the thread that raised them.
    for (int k = 2; k <= kVersions; ++k) {
      auto store = make_stamped_store(k);
      EXPECT_TRUE(pap_edge.submit(
          core::node_to_string(*store->find("probe-policy")), "author"));
      EXPECT_TRUE(pap_edge.issue("probe-policy", "admin"));
      clock.advance(1);
      std::this_thread::yield();
    }
    EXPECT_TRUE(pap_edge.withdraw("probe-policy", "admin"));
  });

  // Submissions race the churn; every decision must be a well-formed
  // single-version permit, or — once the withdrawal lands — the empty
  // store's NotApplicable (which a PEP denies fail-safe).
  std::vector<std::future<EngineResult>> inflight;
  for (int i = 0; i < 600; ++i) inflight.push_back(engine.submit(probe_request()));
  pap.join();
  auto last = engine.submit(probe_request());
  std::size_t permits = 0;
  std::size_t not_applicable = 0;
  for (auto& f : inflight) {
    EngineResult r = f.get();
    ASSERT_EQ(r.status, CompletionStatus::kDecided);
    if (r.decision.is_permit()) {
      ASSERT_EQ(r.decision.obligations.size(), 1u);
      const std::string& tag = r.decision.obligations[0].assignments[0].second.as_string();
      EXPECT_EQ(tag.rfind("v", 0), 0u);
      ++permits;
    } else {
      EXPECT_TRUE(r.decision.is_not_applicable());
      ++not_applicable;
    }
  }
  EXPECT_GT(permits, 0u);
  // After the withdrawal's republication, the engine answers from the
  // empty issued set.
  EXPECT_TRUE(last.get().decision.is_not_applicable());
  engine.shutdown();
  EXPECT_EQ(engine.metrics().sheds(), 0u);
  // issue-republications + withdraw-republication all went through.
  EXPECT_EQ(snapshots.publications(), static_cast<std::uint64_t>(kVersions) + 1);
  (void)not_applicable;
}

TEST(RuntimeChurnTest, ReferencedPolicyChurnThroughCompiledSets) {
  // The ISSUE 5 reference-recompilation edge under live churn: an issued
  // PolicySet references the probe policy; the PAP re-issues the probe
  // policy version after version while the engine serves. Every issue()
  // recompiles the dependent set's artifact *before* RepositoryPublisher
  // republishes, and compiled references resolve through the snapshot's
  // own store — so every decision's stamp obligation must name exactly
  // the leaf version of the snapshot that served it. A stale set program
  // serving a withdrawn/replaced leaf would surface as a wrong stamp.
  constexpr int kVersions = 20;

  SnapshotPublisher snapshots;
  common::ManualClock clock;  // owned by the PAP thread after start
  pap::PolicyRepository repo(clock);
  RepositoryPublisher pap_edge(repo, snapshots);

  // Publication 1: leaf v1. Publication 2: + the referencing set.
  // Publication p >= 2 therefore serves leaf version p - 1.
  {
    auto store = make_stamped_store(1);
    ASSERT_TRUE(pap_edge.submit(
        core::node_to_string(*store->find("probe-policy")), "author"));
    ASSERT_TRUE(pap_edge.issue("probe-policy", "admin"));
    core::PolicySet set;
    set.policy_set_id = "probe-set";
    set.policy_combining = "deny-overrides";
    set.add_reference("probe-policy");
    ASSERT_TRUE(pap_edge.submit(core::node_to_string(set), "author"));
    ASSERT_TRUE(pap_edge.issue("probe-set", "admin"));
  }
  ASSERT_EQ(snapshots.current_version(), 2u);

  EngineConfig config;
  config.workers = 2;
  config.queue_capacity = 2048;
  DecisionEngine engine(snapshots, config);

  std::thread pap([&] {
    for (int k = 2; k <= kVersions; ++k) {
      auto store = make_stamped_store(k);
      EXPECT_TRUE(pap_edge.submit(
          core::node_to_string(*store->find("probe-policy")), "author"));
      EXPECT_TRUE(pap_edge.issue("probe-policy", "admin"));
      clock.advance(1);
      std::this_thread::yield();
    }
    EXPECT_TRUE(pap_edge.withdraw("probe-policy", "admin"));
  });

  std::vector<std::future<EngineResult>> inflight;
  for (int i = 0; i < 600; ++i) inflight.push_back(engine.submit(probe_request()));
  pap.join();
  auto last = engine.submit(probe_request());

  std::size_t permits = 0;
  for (auto& f : inflight) {
    EngineResult r = f.get();
    ASSERT_EQ(r.status, CompletionStatus::kDecided);
    if (r.decision.is_permit()) {
      // Snapshot p carries leaf version p - 1 (p == 1: version 1).
      const std::string expected_tag =
          "v" + std::to_string(r.snapshot_version <= 1 ? 1
                                                       : r.snapshot_version - 1);
      ASSERT_GE(r.decision.obligations.size(), 1u);
      for (const auto& ob : r.decision.obligations) {
        ASSERT_EQ(ob.assignments.size(), 1u);
        EXPECT_EQ(ob.assignments[0].second.as_string(), expected_tag)
            << "snapshot " << r.snapshot_version;
      }
      ++permits;
    } else {
      // Only the post-withdrawal snapshot may produce a non-permit, and
      // it must never surface the withdrawn policy's stamp.
      EXPECT_EQ(r.snapshot_version, snapshots.current_version());
      EXPECT_TRUE(r.decision.obligations.empty());
    }
  }
  EXPECT_GT(permits, 0u);

  // After the withdrawal's republication only the set remains; its
  // reference no longer resolves, so the withdrawn permit (and its
  // stamp) is unreachable — fail-safe, not stale.
  const EngineResult final_result = last.get();
  EXPECT_FALSE(final_result.decision.is_permit());
  EXPECT_TRUE(final_result.decision.obligations.empty());
  engine.shutdown();
  EXPECT_EQ(engine.metrics().sheds(), 0u);
  // 2 setup publications + (kVersions - 1) re-issues + 1 withdrawal.
  EXPECT_EQ(snapshots.publications(), static_cast<std::uint64_t>(kVersions) + 2);
}

TEST(RuntimeChurnTest, TwoLevelCacheNeverServesAStaleDecisionUnderChurn) {
  // The PR-8 staleness pin, under churn and under TSan: with BOTH cache
  // levels in play (worker-local L1, shared seqlock L2), every decision
  // — evaluated, L1-served, or L2-served — must still be byte-for-byte
  // the expected decision of the snapshot version the worker reports.
  // A cache serving across a republication boundary would surface as a
  // stamp/version mismatch.
  constexpr int kPublications = 40;
  constexpr int kRequests = 2000;
  constexpr int kHotKeys = 4;

  SnapshotPublisher publisher;
  ExpectedDecisions expected;
  {
    auto store = make_stamped_store(1);
    core::Pdp oracle(store);
    expected.record(1, oracle.evaluate(probe_request()));
    publisher.publish(store);
  }

  cache::DecisionCache cache(cache::DecisionCache::TwoLevelConfig{.capacity = 4096});
  EngineConfig config;
  config.workers = 4;
  config.queue_capacity = 4096;
  config.max_batch = 8;
  config.l1_capacity = 256;
  DecisionEngine engine(publisher, config, &cache);

  std::thread pap([&] {
    for (int k = 2; k <= kPublications; ++k) {
      auto store = make_stamped_store(k);
      core::Pdp oracle(store);
      expected.record(static_cast<std::uint64_t>(k), oracle.evaluate(probe_request()));
      publisher.publish(store);
      std::this_thread::yield();
    }
  });

  // A small hot pool so both levels see heavy reuse. The policy ignores
  // the subject, so every hot request shares each version's expected
  // decision.
  std::vector<core::RequestContext> hot;
  for (int i = 0; i < kHotKeys; ++i) {
    hot.push_back(core::RequestContext::make("user-" + std::to_string(i), "doc", "read"));
  }

  std::size_t checked = 0;
  const auto check = [&](EngineResult result) {
    ASSERT_EQ(result.status, CompletionStatus::kDecided);
    ASSERT_LE(result.cache_level, 2);
    const auto want = expected.find(result.snapshot_version);
    ASSERT_TRUE(want.has_value()) << "decision from unpublished snapshot "
                                  << result.snapshot_version;
    // Stale cache entries (either level) desynchronise stamp & version.
    ASSERT_EQ(result.decision, *want) << "cache level " << int{result.cache_level};
    ASSERT_EQ(result.decision.obligations[0].assignments[0].second.as_string(),
              "v" + std::to_string(result.snapshot_version));
    ++checked;
  };

  constexpr std::size_t kWindow = 512;
  std::vector<std::future<EngineResult>> inflight;
  inflight.reserve(kWindow);
  for (int i = 0; i < kRequests; ++i) {
    if (inflight.size() >= kWindow) {
      for (auto& f : inflight) check(f.get());
      inflight.clear();
    }
    inflight.push_back(engine.submit(hot[i % kHotKeys]));
  }
  pap.join();
  for (auto& f : inflight) check(f.get());
  inflight.clear();

  // Settled tail, version now fixed at kPublications. (a) Hammer one key
  // sequentially: each worker's first encounter may miss or hit L2, every
  // later one is an L1 hit — pigeonhole guarantees l1_hits > 0. (b) Seed
  // L2 directly with a never-submitted key at the final version; its
  // first submission must be served from L2 (the worker's L1 can't hold
  // it), guaranteeing l2_hits > 0.
  for (int i = 0; i < 64; ++i) check(engine.submit(hot[0]).get());
  {
    const auto final_version = static_cast<std::uint64_t>(kPublications);
    const auto fresh = core::RequestContext::make("bob", "doc", "read");
    cache.insert(cache::fingerprint(fresh), final_version,
                 *expected.find(final_version));
    EngineResult r = engine.submit(fresh).get();
    check(r);
    EXPECT_EQ(r.cache_level, 2);
    EXPECT_EQ(r.snapshot_version, final_version);
  }
  engine.shutdown();

  EXPECT_EQ(checked, static_cast<std::size_t>(kRequests) + 64 + 1);
  const EngineMetrics::Snapshot m = engine.metrics();
  EXPECT_EQ(m.sheds(), 0u);
  EXPECT_GT(m.l1_hits, 0u);
  EXPECT_GT(m.l2_hits, 0u);
  EXPECT_GT(m.cache_misses, 0u);
  EXPECT_EQ(m.cache_hits, m.l1_hits + m.l2_hits);
}

// ---------------------------------------------------------------------
// Tracing under churn: sampled traces stay internally consistent while
// the PAP republishes at full rate. Run under -DMDAC_TSAN=ON this also
// race-checks the tracer's publish/query paths against live workers.
// ---------------------------------------------------------------------

TEST(RuntimeChurnTest, SampledTracesStayConsistentUnderRepublication) {
  constexpr int kPublications = 40;
  constexpr int kRequests = 1200;

  SnapshotPublisher publisher;
  publisher.publish(make_stamped_store(1));

  // Sample everything, ring big enough that nothing is evicted — every
  // submission's trace must be auditable afterwards.
  obs::DecisionTracer tracer(
      obs::ObsConfig{.sample_every_n = 1, .ring_capacity = kRequests + 16});
  cache::DecisionCache cache(cache::DecisionCache::TwoLevelConfig{.capacity = 2048});
  EngineConfig config;
  config.workers = 4;
  config.queue_capacity = 4096;
  config.max_batch = 8;
  config.l1_capacity = 128;
  config.tracer = &tracer;
  DecisionEngine engine(publisher, config, &cache);

  std::thread pap([&] {
    for (int k = 2; k <= kPublications; ++k) {
      publisher.publish(make_stamped_store(k));
      std::this_thread::yield();
    }
  });

  // trace id -> the completion's own stamp, collected on this thread.
  std::map<std::uint64_t, EngineResult> results;
  constexpr std::size_t kWindow = 256;
  std::vector<std::future<EngineResult>> inflight;
  const auto drain = [&] {
    for (auto& f : inflight) {
      EngineResult r = f.get();
      ASSERT_NE(r.trace_id, 0u);
      results.emplace(r.trace_id, std::move(r));
    }
    inflight.clear();
  };
  for (int i = 0; i < kRequests; ++i) {
    if (inflight.size() >= kWindow) drain();
    inflight.push_back(engine.submit(probe_request()));
  }
  drain();
  pap.join();
  engine.shutdown();

  ASSERT_EQ(results.size(), static_cast<std::size_t>(kRequests));
  std::size_t audited = 0;
  for (const obs::Trace& trace : tracer.traces()) {
    const auto it = results.find(trace.trace_id);
    ASSERT_NE(it, results.end()) << "trace for an unknown submission";
    const EngineResult& result = it->second;
    // Internal consistency: the trace's snapshot stamp is the decision
    // stamp — a worker can never report serving one snapshot in its
    // result and another in its trace.
    EXPECT_EQ(trace.snapshot_version, result.snapshot_version);
    EXPECT_EQ(trace.cache_level, result.cache_level);
    EXPECT_EQ(trace.outcome, obs::TraceOutcome::kDecided);
    EXPECT_LT(trace.worker, config.workers);
    // Monotone timeline from admission to outcome.
    EXPECT_GE(trace.finished_ns, trace.started_ns);
    ASSERT_GE(trace.span_count, 2u);
    EXPECT_EQ(trace.spans[0].kind, obs::SpanKind::kAdmission);
    EXPECT_EQ(trace.spans[trace.span_count - 1].kind, obs::SpanKind::kOutcome);
    for (std::size_t i = 0; i < trace.span_count; ++i) {
      EXPECT_GE(trace.spans[i].at_ns, trace.started_ns);
      if (i > 0) {
        EXPECT_GE(trace.spans[i].at_ns, trace.spans[i - 1].at_ns);
      }
    }
    ++audited;
  }
  EXPECT_EQ(audited, static_cast<std::size_t>(kRequests));
  EXPECT_EQ(tracer.published_total(), static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(tracer.ring_dropped_total(), 0u);
}

}  // namespace
}  // namespace mdac::runtime
