#include <gtest/gtest.h>

#include "core/functions.hpp"
#include "core/pdp.hpp"
#include "core/policy.hpp"

namespace mdac::core {
namespace {

EvaluationContext make_ctx(const RequestContext& req,
                           const PolicyStore* store = nullptr) {
  return EvaluationContext(req, FunctionRegistry::standard(), nullptr, store);
}

Rule make_rule(const std::string& id, Effect effect) {
  Rule r;
  r.id = id;
  r.effect = effect;
  return r;
}

// ---------------------------------------------------------------------
// Match / Target semantics
// ---------------------------------------------------------------------

TEST(MatchTest, MatchesWhenAnyBagValueSatisfiesFunction) {
  Match m;
  m.literal = AttributeValue("doctor");
  m.category = Category::kSubject;
  m.attribute_id = "role";

  RequestContext req;
  req.add(Category::kSubject, "role", AttributeValue("nurse"));
  req.add(Category::kSubject, "role", AttributeValue("doctor"));
  auto ctx = make_ctx(req);
  EXPECT_EQ(m.evaluate(ctx), MatchResult::kMatch);
}

TEST(MatchTest, NoMatchOnAbsentOptionalAttribute) {
  Match m;
  m.literal = AttributeValue("doctor");
  m.category = Category::kSubject;
  m.attribute_id = "role";

  RequestContext req;
  auto ctx = make_ctx(req);
  EXPECT_EQ(m.evaluate(ctx), MatchResult::kNoMatch);
}

TEST(MatchTest, IndeterminateOnAbsentMandatoryAttribute) {
  Match m;
  m.literal = AttributeValue("doctor");
  m.category = Category::kSubject;
  m.attribute_id = "role";
  m.must_be_present = true;

  RequestContext req;
  auto ctx = make_ctx(req);
  EXPECT_EQ(m.evaluate(ctx), MatchResult::kIndeterminate);
}

TEST(MatchTest, IndeterminateOnUnknownFunction) {
  Match m;
  m.function_id = "no-such-fn";
  m.literal = AttributeValue("x");
  m.category = Category::kSubject;
  m.attribute_id = "role";

  RequestContext req;
  req.add(Category::kSubject, "role", AttributeValue("x"));
  auto ctx = make_ctx(req);
  EXPECT_EQ(m.evaluate(ctx), MatchResult::kIndeterminate);
}

TEST(TargetTest, EmptyTargetMatchesEverything) {
  Target t;
  RequestContext req;
  auto ctx = make_ctx(req);
  EXPECT_EQ(t.evaluate(ctx), MatchResult::kMatch);
}

TEST(TargetTest, ConjunctionAcrossAnyOfs) {
  Target t;
  t.require(Category::kResource, "resource-id", AttributeValue("doc"));
  t.require(Category::kAction, "action-id", AttributeValue("read"));

  RequestContext both = RequestContext::make("alice", "doc", "read");
  auto ctx1 = make_ctx(both);
  EXPECT_EQ(t.evaluate(ctx1), MatchResult::kMatch);

  RequestContext wrong_action = RequestContext::make("alice", "doc", "write");
  auto ctx2 = make_ctx(wrong_action);
  EXPECT_EQ(t.evaluate(ctx2), MatchResult::kNoMatch);
}

TEST(TargetTest, DisjunctionWithinAnyOf) {
  Target t;
  t.require_any(Category::kAction, "action-id",
                {AttributeValue("read"), AttributeValue("list")});

  RequestContext read = RequestContext::make("a", "r", "read");
  RequestContext list = RequestContext::make("a", "r", "list");
  RequestContext write = RequestContext::make("a", "r", "write");
  auto c1 = make_ctx(read);
  auto c2 = make_ctx(list);
  auto c3 = make_ctx(write);
  EXPECT_EQ(t.evaluate(c1), MatchResult::kMatch);
  EXPECT_EQ(t.evaluate(c2), MatchResult::kMatch);
  EXPECT_EQ(t.evaluate(c3), MatchResult::kNoMatch);
}

TEST(TargetTest, NoMatchBeatsIndeterminate) {
  // An AllOf with one definitive NoMatch stays NoMatch even if another
  // match in the same group errors — XACML truth table.
  Target t;
  AllOf all;
  Match broken;
  broken.literal = AttributeValue("x");
  broken.category = Category::kSubject;
  broken.attribute_id = "missing";
  broken.must_be_present = true;
  Match failing;
  failing.literal = AttributeValue("nope");
  failing.category = Category::kAction;
  failing.attribute_id = "action-id";
  all.matches.push_back(std::move(broken));
  all.matches.push_back(std::move(failing));
  AnyOf any;
  any.all_ofs.push_back(std::move(all));
  t.any_ofs.push_back(std::move(any));

  RequestContext req = RequestContext::make("a", "r", "read");
  auto ctx = make_ctx(req);
  EXPECT_EQ(t.evaluate(ctx), MatchResult::kNoMatch);
}

// ---------------------------------------------------------------------
// Rule evaluation
// ---------------------------------------------------------------------

TEST(RuleTest, EffectReturnedWhenApplicable) {
  RequestContext req;
  auto ctx = make_ctx(req);
  EXPECT_TRUE(make_rule("r", Effect::kPermit).evaluate(ctx).is_permit());
  EXPECT_TRUE(make_rule("r", Effect::kDeny).evaluate(ctx).is_deny());
}

TEST(RuleTest, FalseConditionMeansNotApplicable) {
  Rule r = make_rule("r", Effect::kPermit);
  r.condition = lit(false);
  RequestContext req;
  auto ctx = make_ctx(req);
  EXPECT_TRUE(r.evaluate(ctx).is_not_applicable());
}

TEST(RuleTest, ConditionErrorIsIndeterminateWithEffectExtent) {
  Rule permit = make_rule("p", Effect::kPermit);
  permit.condition = make_apply("one-and-only", lit_bag(Bag()));
  Rule deny = make_rule("d", Effect::kDeny);
  deny.condition = make_apply("one-and-only", lit_bag(Bag()));

  RequestContext req;
  auto ctx = make_ctx(req);
  const Decision dp = permit.evaluate(ctx);
  EXPECT_TRUE(dp.is_indeterminate());
  EXPECT_EQ(dp.extent, IndeterminateExtent::kP);
  const Decision dd = deny.evaluate(ctx);
  EXPECT_TRUE(dd.is_indeterminate());
  EXPECT_EQ(dd.extent, IndeterminateExtent::kD);
}

TEST(RuleTest, NonBooleanConditionIsIndeterminate) {
  Rule r = make_rule("r", Effect::kPermit);
  r.condition = lit("not-a-boolean");
  RequestContext req;
  auto ctx = make_ctx(req);
  EXPECT_TRUE(r.evaluate(ctx).is_indeterminate());
}

TEST(RuleTest, TargetGatesEvaluation) {
  Rule r = make_rule("r", Effect::kPermit);
  Target t;
  t.require(Category::kAction, "action-id", AttributeValue("read"));
  r.target = t;

  RequestContext read = RequestContext::make("a", "r", "read");
  RequestContext write = RequestContext::make("a", "r", "write");
  auto c1 = make_ctx(read);
  auto c2 = make_ctx(write);
  EXPECT_TRUE(r.evaluate(c1).is_permit());
  EXPECT_TRUE(r.evaluate(c2).is_not_applicable());
}

TEST(RuleTest, ObligationAttachedOnMatchingEffect) {
  Rule r = make_rule("r", Effect::kPermit);
  ObligationExpr ob;
  ob.id = "log";
  ob.fulfill_on = Effect::kPermit;
  AttributeAssignmentExpr a;
  a.attribute_id = "msg";
  a.expr = lit("granted");
  ob.assignments.push_back(std::move(a));
  r.obligations.push_back(std::move(ob));

  RequestContext req;
  auto ctx = make_ctx(req);
  const Decision d = r.evaluate(ctx);
  ASSERT_TRUE(d.is_permit());
  ASSERT_EQ(d.obligations.size(), 1u);
  EXPECT_EQ(d.obligations[0].id, "log");
  EXPECT_EQ(d.obligations[0].assignments[0].second, AttributeValue("granted"));
}

TEST(RuleTest, ObligationOnOppositeEffectNotAttached) {
  Rule r = make_rule("r", Effect::kPermit);
  ObligationExpr ob;
  ob.id = "only-on-deny";
  ob.fulfill_on = Effect::kDeny;
  r.obligations.push_back(std::move(ob));

  RequestContext req;
  auto ctx = make_ctx(req);
  EXPECT_TRUE(r.evaluate(ctx).obligations.empty());
}

TEST(RuleTest, FailingObligationPoisonsDecision) {
  // XACML: a decision whose obligations cannot be computed must not be
  // enforced as Permit; it becomes Indeterminate.
  Rule r = make_rule("r", Effect::kPermit);
  ObligationExpr ob;
  ob.id = "broken";
  ob.fulfill_on = Effect::kPermit;
  AttributeAssignmentExpr a;
  a.attribute_id = "x";
  a.expr = make_apply("one-and-only", lit_bag(Bag()));  // always fails
  ob.assignments.push_back(std::move(a));
  r.obligations.push_back(std::move(ob));

  RequestContext req;
  auto ctx = make_ctx(req);
  const Decision d = r.evaluate(ctx);
  EXPECT_TRUE(d.is_indeterminate());
  EXPECT_EQ(d.extent, IndeterminateExtent::kP);
}

TEST(RuleTest, AdviceGoesToAdviceList) {
  Rule r = make_rule("r", Effect::kPermit);
  ObligationExpr ob;
  ob.id = "hint";
  ob.fulfill_on = Effect::kPermit;
  ob.advice = true;
  r.obligations.push_back(std::move(ob));

  RequestContext req;
  auto ctx = make_ctx(req);
  const Decision d = r.evaluate(ctx);
  EXPECT_TRUE(d.obligations.empty());
  ASSERT_EQ(d.advice.size(), 1u);
  EXPECT_EQ(d.advice[0].id, "hint");
}

// ---------------------------------------------------------------------
// Policy evaluation
// ---------------------------------------------------------------------

Policy two_rule_policy(const std::string& combining) {
  Policy p;
  p.policy_id = "p";
  p.rule_combining = combining;
  Rule deny = make_rule("deny-writes", Effect::kDeny);
  Target t;
  t.require(Category::kAction, "action-id", AttributeValue("write"));
  deny.target = t;
  p.rules.push_back(std::move(deny));
  p.rules.push_back(make_rule("permit-all", Effect::kPermit));
  return p;
}

TEST(PolicyTest, RuleCombiningApplies) {
  Policy p = two_rule_policy("deny-overrides");
  RequestContext write = RequestContext::make("a", "r", "write");
  RequestContext read = RequestContext::make("a", "r", "read");
  auto c1 = make_ctx(write);
  auto c2 = make_ctx(read);
  EXPECT_TRUE(p.evaluate(c1).is_deny());
  EXPECT_TRUE(p.evaluate(c2).is_permit());
}

TEST(PolicyTest, TargetNoMatchShadowsRules) {
  Policy p = two_rule_policy("deny-overrides");
  p.target_spec.require(Category::kResource, "resource-id", AttributeValue("vault"));
  RequestContext other = RequestContext::make("a", "not-vault", "read");
  auto ctx = make_ctx(other);
  EXPECT_TRUE(p.evaluate(ctx).is_not_applicable());
}

TEST(PolicyTest, UnknownCombiningAlgorithmIsIndeterminate) {
  Policy p = two_rule_policy("no-such-algorithm");
  RequestContext req = RequestContext::make("a", "r", "read");
  auto ctx = make_ctx(req);
  const Decision d = p.evaluate(ctx);
  EXPECT_TRUE(d.is_indeterminate());
  EXPECT_EQ(d.status.code, StatusCode::kSyntaxError);
}

TEST(PolicyTest, IndeterminateTargetMasksDecision) {
  Policy p = two_rule_policy("deny-overrides");
  // A target whose match errors (mandatory missing attribute).
  AnyOf any;
  AllOf all;
  Match m;
  m.literal = AttributeValue("x");
  m.category = Category::kSubject;
  m.attribute_id = "missing";
  m.must_be_present = true;
  all.matches.push_back(std::move(m));
  any.all_ofs.push_back(std::move(all));
  p.target_spec.any_ofs.push_back(std::move(any));

  RequestContext req = RequestContext::make("a", "r", "read");
  auto ctx = make_ctx(req);
  const Decision d = p.evaluate(ctx);
  // Rules would have said Permit, so the mask gives Indeterminate{P}.
  EXPECT_TRUE(d.is_indeterminate());
  EXPECT_EQ(d.extent, IndeterminateExtent::kP);
}

TEST(PolicyTest, PolicyLevelObligationsAppended) {
  Policy p = two_rule_policy("deny-overrides");
  ObligationExpr ob;
  ob.id = "policy-level";
  ob.fulfill_on = Effect::kPermit;
  p.obligations.push_back(std::move(ob));

  RequestContext read = RequestContext::make("a", "r", "read");
  auto ctx = make_ctx(read);
  const Decision d = p.evaluate(ctx);
  ASSERT_TRUE(d.is_permit());
  ASSERT_EQ(d.obligations.size(), 1u);
  EXPECT_EQ(d.obligations[0].id, "policy-level");
}

TEST(PolicyTest, CloneIsDeepAndEquivalent) {
  Policy p = two_rule_policy("deny-overrides");
  const Policy copy = p.clone();
  RequestContext write = RequestContext::make("a", "r", "write");
  auto c1 = make_ctx(write);
  auto c2 = make_ctx(write);
  EXPECT_EQ(p.evaluate(c1).type, copy.evaluate(c2).type);
  EXPECT_EQ(copy.policy_id, p.policy_id);
}

// ---------------------------------------------------------------------
// PolicySet nesting and references
// ---------------------------------------------------------------------

TEST(PolicySetTest, NestedEvaluation) {
  PolicySet root;
  root.policy_set_id = "root";
  root.policy_combining = "first-applicable";

  Policy inner = two_rule_policy("deny-overrides");
  inner.policy_id = "inner";
  root.add(std::move(inner));

  RequestContext read = RequestContext::make("a", "r", "read");
  auto ctx = make_ctx(read);
  EXPECT_TRUE(root.evaluate(ctx).is_permit());
}

TEST(PolicySetTest, DeeplyNestedSets) {
  PolicySet level2;
  level2.policy_set_id = "level2";
  level2.add(two_rule_policy("deny-overrides"));
  PolicySet level1;
  level1.policy_set_id = "level1";
  level1.add(std::move(level2));
  PolicySet root;
  root.policy_set_id = "root";
  root.add(std::move(level1));

  RequestContext write = RequestContext::make("a", "r", "write");
  auto ctx = make_ctx(write);
  EXPECT_TRUE(root.evaluate(ctx).is_deny());
}

TEST(PolicySetTest, ReferenceResolvesThroughStore) {
  PolicyStore store;
  Policy target = two_rule_policy("deny-overrides");
  target.policy_id = "referenced";
  store.add(std::move(target));

  PolicySet root;
  root.policy_set_id = "root";
  root.add_reference("referenced");
  RequestContext read = RequestContext::make("a", "r", "read");
  auto ctx = make_ctx(read, &store);
  EXPECT_TRUE(root.evaluate(ctx).is_permit());
}

TEST(PolicySetTest, UnresolvedReferenceIsIndeterminate) {
  PolicyStore store;
  PolicySet root;
  root.policy_set_id = "root";
  root.add_reference("ghost");
  RequestContext read = RequestContext::make("a", "r", "read");
  auto ctx = make_ctx(read, &store);
  const Decision d = root.evaluate(ctx);
  EXPECT_TRUE(d.is_indeterminate());
  EXPECT_EQ(d.extent, IndeterminateExtent::kDP);
}

TEST(PolicySetTest, ReferenceCycleDetected) {
  // a references b references a: evaluation must terminate with an error
  // decision, not hang or crash.
  PolicyStore store;
  PolicySet a;
  a.policy_set_id = "a";
  a.add_reference("b");
  PolicySet b;
  b.policy_set_id = "b";
  b.add_reference("a");
  store.add(std::move(a));
  store.add(std::move(b));

  RequestContext req = RequestContext::make("s", "r", "read");
  auto ctx = make_ctx(req, &store);
  const Decision d = store.find("a")->evaluate(ctx);
  EXPECT_TRUE(d.is_indeterminate());
}

TEST(PolicySetTest, SelfReferenceDetected) {
  PolicyStore store;
  PolicySet a;
  a.policy_set_id = "self";
  a.add_reference("self");
  store.add(std::move(a));

  RequestContext req = RequestContext::make("s", "r", "read");
  auto ctx = make_ctx(req, &store);
  EXPECT_TRUE(store.find("self")->evaluate(ctx).is_indeterminate());
}

TEST(PolicySetTest, DiamondReferenceIsAllowed) {
  // Two children referencing the same policy is NOT a cycle.
  PolicyStore store;
  Policy shared = two_rule_policy("deny-overrides");
  shared.policy_id = "shared";
  store.add(std::move(shared));

  PolicySet root;
  root.policy_set_id = "root";
  root.policy_combining = "permit-overrides";
  root.add_reference("shared");
  root.add_reference("shared");

  RequestContext read = RequestContext::make("a", "r", "read");
  auto ctx = make_ctx(read, &store);
  EXPECT_TRUE(root.evaluate(ctx).is_permit());
}

// ---------------------------------------------------------------------
// PolicyStore
// ---------------------------------------------------------------------

TEST(PolicyStoreTest, AddFindRemove) {
  PolicyStore store;
  Policy p = two_rule_policy("deny-overrides");
  p.policy_id = "p1";
  store.add(std::move(p));
  EXPECT_NE(store.find("p1"), nullptr);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.remove("p1"));
  EXPECT_EQ(store.find("p1"), nullptr);
  EXPECT_FALSE(store.remove("p1"));
}

TEST(PolicyStoreTest, AddSameIdReplaces) {
  PolicyStore store;
  Policy a = two_rule_policy("deny-overrides");
  a.policy_id = "p";
  a.version = "1";
  store.add(std::move(a));
  Policy b = two_rule_policy("deny-overrides");
  b.policy_id = "p";
  b.version = "2";
  store.add(std::move(b));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(static_cast<const Policy*>(store.find("p"))->version, "2");
}

TEST(PolicyStoreTest, RevisionBumpsOnMutation) {
  PolicyStore store;
  const auto r0 = store.revision();
  Policy p = two_rule_policy("deny-overrides");
  p.policy_id = "p";
  store.add(std::move(p));
  const auto r1 = store.revision();
  EXPECT_NE(r0, r1);
  store.remove("p");
  EXPECT_NE(store.revision(), r1);
}

TEST(PolicyStoreTest, TopLevelPreservesInsertionOrder) {
  PolicyStore store;
  for (const char* id : {"z", "a", "m"}) {
    Policy p;
    p.policy_id = id;
    store.add(std::move(p));
  }
  const auto nodes = store.top_level();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0]->id(), "z");
  EXPECT_EQ(nodes[1]->id(), "a");
  EXPECT_EQ(nodes[2]->id(), "m");
}

}  // namespace
}  // namespace mdac::core
