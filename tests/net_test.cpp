#include <gtest/gtest.h>

#include "net/fault.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "net/rpc.hpp"
#include "net/secure_channel.hpp"
#include "net/sim.hpp"
#include "xml/xml.hpp"

namespace mdac::net {
namespace {

// ---------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, SameTimeEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(10, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, HandlersMayScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 5) sim.schedule(10, chain);
  };
  sim.schedule(0, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(SimulatorTest, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NegativeDelayRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, ClockViewTracksSimTime) {
  Simulator sim;
  const common::Clock& clock = sim.clock();
  EXPECT_EQ(clock.now(), 0);
  sim.schedule(42, [] {});
  sim.run();
  EXPECT_EQ(clock.now(), 42);
}

// ---------------------------------------------------------------------
// Message envelopes
// ---------------------------------------------------------------------

TEST(MessageTest, EnvelopeRoundTrip) {
  Message m;
  m.from = "domain-a/pep";
  m.to = "domain-b/pdp";
  m.type = "authz-request";
  m.payload = "<Request><Attributes Category=\"subject\"/></Request>";
  m.correlation = 77;
  m.is_response = false;
  const auto back = Message::from_envelope(m.to_envelope());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(MessageTest, ResponseFlagSurvives) {
  Message m;
  m.from = "a";
  m.to = "b";
  m.type = "t";
  m.correlation = 5;
  m.is_response = true;
  const auto back = Message::from_envelope(m.to_envelope());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->is_response);
}

TEST(MessageTest, MalformedEnvelopeRejected) {
  EXPECT_FALSE(Message::from_envelope("not xml").has_value());
  EXPECT_FALSE(Message::from_envelope("<Envelope/>").has_value());
  // Missing routing information makes the envelope undeliverable.
  EXPECT_FALSE(
      Message::from_envelope("<Envelope><Header/><Body/></Envelope>").has_value());
  // Correlation garbage is rejected too.
  EXPECT_FALSE(Message::from_envelope("<Envelope><Header><To>b</To><Type>t</Type>"
                                      "<Correlation>x</Correlation></Header>"
                                      "<Body/></Envelope>")
                   .has_value());
}

TEST(MessageTest, SizeAccountsForEnvelopeOverhead) {
  Message m;
  m.from = "a";
  m.to = "b";
  m.type = "t";
  m.payload = "xx";
  EXPECT_GT(m.size_bytes(), m.payload.size());
}

// ---------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------

struct Inbox {
  std::vector<Message> received;
  Network::MessageHandler handler() {
    return [this](const Message& m) { received.push_back(m); };
  }
};

TEST(NetworkTest, DeliversWithLinkLatency) {
  Simulator sim;
  Network net(sim);
  net.set_default_link({/*base_latency=*/25, 0, 0.0});
  Inbox inbox;
  net.register_node("b", inbox.handler());

  Message m;
  m.from = "a";
  m.to = "b";
  m.type = "hello";
  net.send(m);
  EXPECT_TRUE(inbox.received.empty());
  sim.run();
  ASSERT_EQ(inbox.received.size(), 1u);
  EXPECT_EQ(sim.now(), 25);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
  EXPECT_GT(net.stats().bytes_sent, 0u);
}

TEST(NetworkTest, PerLinkOverrides) {
  Simulator sim;
  Network net(sim);
  net.set_default_link({10, 0, 0.0});
  net.set_link("a", "c", {100, 0, 0.0});
  Inbox b, c;
  net.register_node("b", b.handler());
  net.register_node("c", c.handler());

  Message to_b{"a", "b", "t", "", 0, false};
  Message to_c{"a", "c", "t", "", 0, false};
  net.send(to_b);
  net.send(to_c);
  sim.run_until(50);
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(c.received.empty());
  sim.run();
  EXPECT_EQ(c.received.size(), 1u);
}

TEST(NetworkTest, LossyLinkDropsSomeMessages) {
  Simulator sim;
  Network net(sim);
  net.set_default_link({1, 0, /*drop=*/0.5});
  Inbox inbox;
  net.register_node("b", inbox.handler());
  for (int i = 0; i < 200; ++i) {
    net.send(Message{"a", "b", "t", "", 0, false});
  }
  sim.run();
  EXPECT_GT(net.stats().messages_dropped, 50u);
  EXPECT_GT(net.stats().messages_delivered, 50u);
  EXPECT_EQ(net.stats().messages_dropped + net.stats().messages_delivered, 200u);
}

TEST(NetworkTest, DownNodeLosesTraffic) {
  Simulator sim;
  Network net(sim);
  Inbox inbox;
  net.register_node("b", inbox.handler());
  net.set_node_up("b", false);
  net.send(Message{"a", "b", "t", "", 0, false});
  sim.run();
  EXPECT_TRUE(inbox.received.empty());
  EXPECT_EQ(net.stats().messages_undeliverable, 1u);

  net.set_node_up("b", true);
  net.send(Message{"a", "b", "t", "", 0, false});
  sim.run();
  EXPECT_EQ(inbox.received.size(), 1u);
}

TEST(NetworkTest, UnknownNodeIsUndeliverable) {
  Simulator sim;
  Network net(sim);
  net.send(Message{"a", "ghost", "t", "", 0, false});
  sim.run();
  EXPECT_EQ(net.stats().messages_undeliverable, 1u);
}

// ---------------------------------------------------------------------
// RPC
// ---------------------------------------------------------------------

TEST(RpcTest, RequestResponseRoundTrip) {
  Simulator sim;
  Network net(sim);
  net.set_default_link({5, 0, 0.0});

  RpcNode server(net, "server");
  server.set_request_handler([](const std::string& type, const std::string& payload,
                                const std::string& from) {
    return type + ":" + payload + ":" + from;
  });
  RpcNode client(net, "client");

  std::optional<std::string> got;
  client.call("server", "echo", "hello", 1000,
              [&](std::optional<std::string> r) { got = r; });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "echo:hello:client");
  EXPECT_EQ(client.timeouts(), 0u);
}

TEST(RpcTest, TimeoutWhenServerDown) {
  Simulator sim;
  Network net(sim);
  RpcNode server(net, "server");
  server.set_request_handler([](auto&&...) { return "never"; });
  net.set_node_up("server", false);
  RpcNode client(net, "client");

  bool called = false;
  std::optional<std::string> got = std::string("sentinel");
  client.call("server", "echo", "x", 100, [&](std::optional<std::string> r) {
    called = true;
    got = r;
  });
  sim.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(client.timeouts(), 1u);
}

TEST(RpcTest, LateResponseIgnoredAfterTimeout) {
  Simulator sim;
  Network net(sim);
  // Response path is slow: server->client link 500ms, request path 5ms.
  net.set_default_link({5, 0, 0.0});
  net.set_link("server", "client", {500, 0, 0.0});

  RpcNode server(net, "server");
  server.set_request_handler([](auto&&...) { return "slow"; });
  RpcNode client(net, "client");

  int calls = 0;
  client.call("server", "t", "", 100, [&](std::optional<std::string> r) {
    ++calls;
    EXPECT_FALSE(r.has_value());  // timeout wins
  });
  sim.run();
  EXPECT_EQ(calls, 1);  // callback fired exactly once
}

TEST(RpcTest, ConcurrentCallsCorrelatedCorrectly) {
  Simulator sim;
  Network net(sim);
  net.set_default_link({5, 3, 0.0});  // jitter shuffles arrival order
  RpcNode server(net, "server");
  server.set_request_handler(
      [](const std::string&, const std::string& payload, const std::string&) {
        return "re:" + payload;
      });
  RpcNode client(net, "client");

  std::map<int, std::string> results;
  for (int i = 0; i < 20; ++i) {
    client.call("server", "t", std::to_string(i), 1000,
                [&results, i](std::optional<std::string> r) {
                  ASSERT_TRUE(r.has_value());
                  results[i] = *r;
                });
  }
  sim.run();
  ASSERT_EQ(results.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(results[i], "re:" + std::to_string(i));
  }
}

TEST(RpcTest, AsyncHandlerCanDeferResponse) {
  Simulator sim;
  Network net(sim);
  net.set_default_link({5, 0, 0.0});
  RpcNode server(net, "server");
  server.set_async_request_handler(
      [&sim](const std::string&, const std::string& payload, const std::string&,
             RpcNode::Responder respond) {
        sim.schedule(50, [respond, payload]() { respond("deferred:" + payload); });
      });
  RpcNode client(net, "client");

  std::optional<std::string> got;
  client.call("server", "t", "x", 1000,
              [&](std::optional<std::string> r) { got = r; });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "deferred:x");
  EXPECT_GE(sim.now(), 60);
}

TEST(RpcTest, NotifyIsOneWay) {
  Simulator sim;
  Network net(sim);
  RpcNode server(net, "server");
  std::vector<std::string> notifications;
  server.set_notify_handler(
      [&](const std::string& type, const std::string& payload, const std::string&) {
        notifications.push_back(type + ":" + payload);
      });
  RpcNode client(net, "client");
  client.notify("server", "event", "data");
  sim.run();
  EXPECT_EQ(notifications, (std::vector<std::string>{"event:data"}));
}

// ---------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------

Message plain(const std::string& from, const std::string& to) {
  return Message{from, to, "t", "<Payload/>", 0, false};
}

TEST(FaultPlanTest, DropWindowOnlyActiveInsideItsInterval) {
  Simulator sim;
  Network net(sim);
  net.set_default_link({1, 0, 0.0});
  Inbox inbox;
  net.register_node("b", inbox.handler());

  FaultPlan plan;
  LinkFault f;
  f.from = "a";
  f.to = "b";
  f.start = 100;
  f.stop = 200;
  f.drop_probability = 1.0;
  plan.add_link_fault(std::move(f));
  plan.arm(net);

  net.send(plain("a", "b"));                          // before the window
  sim.schedule(150, [&] { net.send(plain("a", "b")); });  // inside: dropped
  sim.schedule(250, [&] { net.send(plain("a", "b")); });  // after: delivered
  sim.run();
  EXPECT_EQ(inbox.received.size(), 2u);
  EXPECT_EQ(plan.stats().drops, 1u);
}

TEST(FaultPlanTest, CorruptionIsAlwaysDetectable) {
  Simulator sim;
  Network net(sim);
  net.set_default_link({1, 0, 0.0});
  Inbox inbox;
  net.register_node("b", inbox.handler());

  FaultPlan plan;
  LinkFault f;
  f.corrupt_probability = 1.0;
  plan.add_link_fault(std::move(f));
  plan.arm(net);

  net.send(plain("a", "b"));
  sim.run();
  ASSERT_EQ(inbox.received.size(), 1u);
  // The checksum-failure model: the payload is replaced by a marker no
  // XML parser accepts, so receivers *detect* corruption instead of
  // silently evaluating an altered request.
  EXPECT_EQ(inbox.received[0].payload, kCorruptedPayload);
  EXPECT_FALSE(xml::try_parse(inbox.received[0].payload).has_value());
  EXPECT_EQ(net.stats().messages_corrupted, 1u);
}

TEST(FaultPlanTest, DuplicationDeliversTwice) {
  Simulator sim;
  Network net(sim);
  net.set_default_link({1, 0, 0.0});
  Inbox inbox;
  net.register_node("b", inbox.handler());

  FaultPlan plan;
  LinkFault f;
  f.duplicate_probability = 1.0;
  plan.add_link_fault(std::move(f));
  plan.arm(net);

  net.send(plain("a", "b"));
  sim.run();
  EXPECT_EQ(inbox.received.size(), 2u);
  EXPECT_EQ(net.stats().messages_duplicated, 1u);
}

TEST(FaultPlanTest, DelaySpikeAddsToLinkLatency) {
  Simulator sim;
  Network net(sim);
  net.set_default_link({10, 0, 0.0});
  Inbox inbox;
  net.register_node("b", inbox.handler());

  FaultPlan plan;
  LinkFault f;
  f.delay_ms = 100;
  plan.add_link_fault(std::move(f));
  plan.arm(net);

  net.send(plain("a", "b"));
  sim.run();
  ASSERT_EQ(inbox.received.size(), 1u);
  EXPECT_EQ(sim.now(), 110);  // base 10 + spike 100
  EXPECT_EQ(plan.stats().delays, 1u);
}

TEST(FaultPlanTest, PartitionIsAsymmetric) {
  Simulator sim;
  Network net(sim);
  net.set_default_link({1, 0, 0.0});
  Inbox a, b;
  net.register_node("a", a.handler());
  net.register_node("b", b.handler());

  FaultPlan plan;
  plan.partition({"a"}, {"b"}, 0, 1000);
  plan.arm(net);

  net.send(plain("a", "b"));  // a -> b blackholed
  net.send(plain("b", "a"));  // b -> a unaffected
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(a.received.size(), 1u);
}

TEST(FaultPlanTest, FlapSchedulesCrashAndRecoveryWindows) {
  Simulator sim;
  Network net(sim);
  Inbox inbox;
  net.register_node("n", inbox.handler());

  FaultPlan plan;
  plan.flap("n", /*first_down=*/100, /*down_for=*/50, /*period=*/200,
            /*until=*/500);
  plan.arm(net);

  std::map<common::TimePoint, bool> up_at;
  for (common::TimePoint t : {50, 120, 180, 320, 380}) {
    sim.schedule(t, [&, t] { up_at[t] = net.is_up("n"); });
  }
  sim.run();
  EXPECT_TRUE(up_at[50]);    // before the first outage
  EXPECT_FALSE(up_at[120]);  // inside [100, 150)
  EXPECT_TRUE(up_at[180]);   // recovered
  EXPECT_FALSE(up_at[320]);  // inside [300, 350)
  EXPECT_TRUE(up_at[380]);
  EXPECT_EQ(plan.stats().crashes, 2u);
  EXPECT_EQ(plan.stats().recoveries, 2u);
}

TEST(FaultPlanTest, FlapValidatesItsSchedule) {
  FaultPlan plan;
  EXPECT_THROW(plan.flap("n", 0, /*down_for=*/100, /*period=*/100, 1000),
               std::invalid_argument);  // never up between outages
  EXPECT_THROW(plan.flap("n", 0, /*down_for=*/0, /*period=*/100, 1000),
               std::invalid_argument);
}

TEST(FaultPlanTest, SameSeedReplaysIdentically) {
  const auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    Network net(sim);
    net.set_default_link({1, 0, 0.0});
    Inbox inbox;
    net.register_node("b", inbox.handler());
    FaultPlan plan(seed);
    LinkFault f;
    f.drop_probability = 0.3;
    f.duplicate_probability = 0.2;
    f.delay_jitter_ms = 15;
    plan.add_link_fault(std::move(f));
    plan.arm(net);
    for (int i = 0; i < 100; ++i) {
      sim.schedule(i * 5, [&] { net.send(plain("a", "b")); });
    }
    sim.run();
    return std::tuple{inbox.received.size(), plan.stats().drops,
                      plan.stats().duplicates, sim.now()};
  };
  EXPECT_EQ(run_once(7), run_once(7));  // determinism: byte-identical replay
  EXPECT_NE(run_once(7), run_once(8));  // ...and the seed actually matters
}

TEST(FaultPlanTest, NamedPlansConstructAndUnknownNameThrows) {
  const std::vector<std::string> nodes = {"pdp/0", "pdp/1", "pdp/2"};
  for (const std::string& name : named_fault_plan_names()) {
    EXPECT_NE(make_named_fault_plan(name, 1, nodes, "pep", 5000), nullptr);
  }
  EXPECT_THROW(make_named_fault_plan("no-such-plan", 1, nodes, "pep"),
               std::invalid_argument);
}

TEST(FaultPlanTest, DisarmDetachesFromTheNetwork) {
  Simulator sim;
  Network net(sim);
  net.set_default_link({1, 0, 0.0});
  Inbox inbox;
  net.register_node("b", inbox.handler());

  FaultPlan plan;
  LinkFault f;
  f.drop_probability = 1.0;
  plan.add_link_fault(std::move(f));
  plan.arm(net);
  plan.disarm();
  EXPECT_EQ(net.fault_injector(), nullptr);

  net.send(plain("a", "b"));
  sim.run();
  EXPECT_EQ(inbox.received.size(), 1u);  // fault-free again
}

// ---------------------------------------------------------------------
// Secure channel
// ---------------------------------------------------------------------

class SecureChannelTest : public ::testing::Test {
 protected:
  SecureChannelTest()
      : key_a_(crypto::KeyPair::generate("node-a")),
        key_b_(crypto::KeyPair::generate("node-b")),
        content_key_(common::to_bytes("shared-content-key")) {
    trust_a_.add_trusted_key(key_b_);
    trust_b_.add_trusted_key(key_a_);
  }

  crypto::KeyPair key_a_;
  crypto::KeyPair key_b_;
  crypto::TrustStore trust_a_;  // what a trusts (b's key)
  crypto::TrustStore trust_b_;
  common::Bytes content_key_;
};

TEST_F(SecureChannelTest, PlainRoundTrip) {
  SecureChannel a(key_a_, trust_a_, content_key_);
  SecureChannel b(key_b_, trust_b_, content_key_);
  const std::string wire = a.protect("hello", {false, false});
  EXPECT_EQ(b.unprotect(wire), "hello");
}

TEST_F(SecureChannelTest, SignedRoundTripAndTamperDetection) {
  SecureChannel a(key_a_, trust_a_, content_key_);
  SecureChannel b(key_b_, trust_b_, content_key_);
  const std::string wire = a.protect("payload", {true, false});
  EXPECT_EQ(b.unprotect(wire), "payload");

  // Flip a byte inside the payload.
  std::string tampered = wire;
  const auto pos = tampered.find("payload");
  ASSERT_NE(pos, std::string::npos);
  tampered[pos] = 'P';
  EXPECT_FALSE(b.unprotect(tampered).has_value());
}

TEST_F(SecureChannelTest, SignedEncryptedRoundTrip) {
  SecureChannel a(key_a_, trust_a_, content_key_);
  SecureChannel b(key_b_, trust_b_, content_key_);
  const std::string secret = "<Request>secret attributes</Request>";
  const std::string wire = a.protect(secret, {true, true});
  EXPECT_EQ(wire.find("secret attributes"), std::string::npos);  // confidential
  EXPECT_EQ(b.unprotect(wire), secret);
}

TEST_F(SecureChannelTest, UntrustedSignerRejected) {
  const auto rogue_key = crypto::KeyPair::generate("rogue");
  crypto::TrustStore empty;
  SecureChannel rogue(rogue_key, empty, content_key_);
  SecureChannel b(key_b_, trust_b_, content_key_);
  const std::string wire = rogue.protect("evil", {true, false});
  EXPECT_FALSE(b.unprotect(wire).has_value());
}

TEST_F(SecureChannelTest, WrongContentKeyFails) {
  SecureChannel a(key_a_, trust_a_, content_key_);
  SecureChannel wrong(key_b_, trust_b_, common::to_bytes("different-key"));
  const std::string wire = a.protect("data", {false, true});
  EXPECT_FALSE(wrong.unprotect(wire).has_value());
}

TEST_F(SecureChannelTest, SecurityAddsMeasurableOverhead) {
  SecureChannel a(key_a_, trust_a_, content_key_);
  const std::string payload(200, 'x');
  const std::size_t plain = a.protect(payload, {false, false}).size();
  const std::size_t signed_only = a.protect(payload, {true, false}).size();
  const std::size_t both = a.protect(payload, {true, true}).size();
  EXPECT_GT(signed_only, plain);
  EXPECT_GT(both, signed_only);
}

TEST_F(SecureChannelTest, DistinctNoncesPerMessage) {
  SecureChannel a(key_a_, trust_a_, content_key_);
  const std::string w1 = a.protect("same", {false, true});
  const std::string w2 = a.protect("same", {false, true});
  EXPECT_NE(w1, w2);  // fresh nonce -> different ciphertext
}

}  // namespace
}  // namespace mdac::net
