// A multi-domain decision service on the mdac::runtime engine:
//
//   PAP (RepositoryPublisher) --publishes snapshots--> SnapshotPublisher
//        |                                                  |
//   issue/update/withdraw                         DecisionEngine (N workers,
//        |                                         private Pdp replicas,
//        v                                         bounded queue, shedding)
//   audit log                                               ^
//                                                           |
//   PEP (EnforcementPoint) --submit via engine_decision_source
//
// Run it to watch the same PEP traffic flow while the PAP republishes
// policy mid-stream, and to see deterministic shedding once the queue
// bound is hit.
#include <cstdio>
#include <future>
#include <vector>

#include "common/clock.hpp"
#include "core/expression.hpp"
#include "core/serialization.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pap/repository.hpp"
#include "pep/pep.hpp"
#include "runtime/engine.hpp"
#include "runtime/snapshot.hpp"

using namespace mdac;

namespace {

core::Policy records_policy(bool allow_audit_role) {
  core::Policy p;
  p.policy_id = "records-access";
  p.rule_combining = "first-applicable";
  p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                        core::AttributeValue("patient-records"));
  core::Rule doctors;
  doctors.id = "permit-doctors";
  doctors.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kSubject, core::attrs::kRole,
            core::AttributeValue("doctor"));
  doctors.target = std::move(t);
  p.rules.push_back(std::move(doctors));
  if (allow_audit_role) {
    core::Rule auditors;
    auditors.id = "permit-auditors";
    auditors.effect = core::Effect::kPermit;
    core::Target ta;
    ta.require(core::Category::kSubject, core::attrs::kRole,
               core::AttributeValue("auditor"));
    auditors.target = std::move(ta);
    p.rules.push_back(std::move(auditors));
  }
  core::Rule deny;
  deny.id = "deny-rest";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  return p;
}

core::RequestContext request_as(const char* role) {
  core::RequestContext r =
      core::RequestContext::make("user-1", "patient-records", "read");
  r.add(core::Category::kSubject, core::attrs::kRole, core::AttributeValue(role));
  return r;
}

}  // namespace

int main() {
  // --- PAP side: repository + snapshot publication -------------------
  common::WallClock clock;
  pap::PolicyRepository repo(clock);
  runtime::SnapshotPublisher snapshots;
  runtime::RepositoryPublisher pap(repo, snapshots);

  pap.submit(core::node_to_string(records_policy(/*allow_audit_role=*/false)),
             "hospital-admin");
  pap.issue("records-access", "hospital-admin");

  // --- Runtime: 4 worker replicas over the published snapshot, with
  // the PR-8 two-level decision cache: per-worker L1s in front of a
  // shared seqlock L2, keyed by (request fingerprint, snapshot version)
  // so the republication below implicitly invalidates every cached
  // decision. pin_workers asks for one core per worker (a graceful
  // no-op on small hosts or unsupported platforms).
  cache::DecisionCache cache(cache::DecisionCache::TwoLevelConfig{.capacity = 4096});
  // Observability (mdac::obs): head-sample every 100th decision, and
  // tail-sample every shed / fail-safe as an anomaly regardless.
  obs::DecisionTracer tracer(obs::ObsConfig{.sample_every_n = 100});
  runtime::EngineConfig config;
  config.workers = 4;
  config.queue_capacity = 64;
  config.l1_capacity = 256;
  config.pin_workers = true;
  config.tracer = &tracer;
  runtime::DecisionEngine engine(snapshots, config, &cache);

  // --- PEP side: the ordinary EnforcementPoint, engine-backed --------
  pep::EnforcementPoint pep_point(runtime::engine_decision_source(engine));

  const auto show = [&](const char* role) {
    const pep::Enforcement e = pep_point.enforce(request_as(role));
    std::printf("  %-8s -> %s (%s)\n", role, e.allowed ? "ALLOW" : "DENY",
                e.allowed ? "permit" : e.reason.c_str());
  };

  std::printf("snapshot v%llu (doctors only):\n",
              static_cast<unsigned long long>(snapshots.current_version()));
  show("doctor");
  show("auditor");

  // --- PAP update mid-stream: auditors gain access -------------------
  pap.submit(core::node_to_string(records_policy(/*allow_audit_role=*/true)),
             "hospital-admin");
  pap.issue("records-access", "compliance-officer");
  std::printf("snapshot v%llu (auditors added; workers adopt at the next batch):\n",
              static_cast<unsigned long long>(snapshots.current_version()));
  show("doctor");
  show("auditor");

  // --- Overload: flood past the queue bound and watch the shed path --
  std::vector<std::future<runtime::EngineResult>> flood;
  for (int i = 0; i < 2000; ++i) flood.push_back(engine.submit(request_as("doctor")));
  std::size_t decided = 0;
  std::size_t shed = 0;
  for (auto& f : flood) {
    (f.get().status == runtime::CompletionStatus::kDecided) ? ++decided : ++shed;
  }
  engine.shutdown();
  const runtime::EngineMetrics::Snapshot m = engine.metrics();
  std::printf(
      "flood of %zu: %zu decided, %zu shed (queue bound %zu) — shed decisions are "
      "Indeterminate{DP} '%s', which the PEP denies fail-safe\n",
      flood.size(), decided, shed, engine.queue_capacity(), runtime::kShedQueueFullMessage);
  std::printf(
      "engine metrics: %llu submitted, %llu decided, shed_rate %.2f, mean batch %.1f, "
      "p50 %.0f us\n",
      static_cast<unsigned long long>(m.submitted),
      static_cast<unsigned long long>(m.decided), m.shed_rate(), m.mean_batch_size,
      m.latency_p50_ns / 1000.0);
  std::printf(
      "decision cache: %llu L1 hits, %llu L2 hits, %llu misses, %llu L2 read "
      "retries, %llu version evictions (republication swept v1 entries), "
      "%zu workers pinned\n",
      static_cast<unsigned long long>(m.l1_hits),
      static_cast<unsigned long long>(m.l2_hits),
      static_cast<unsigned long long>(m.cache_misses),
      static_cast<unsigned long long>(m.l2_read_retries),
      static_cast<unsigned long long>(m.version_evictions),
      engine.workers_pinned());

  // --- Explain traces: query the tracer's ring -----------------------
  std::printf(
      "\ntracer: %llu admitted, %llu sampled, %llu published (%llu anomalies)\n",
      static_cast<unsigned long long>(tracer.admitted_total()),
      static_cast<unsigned long long>(tracer.sampled_total()),
      static_cast<unsigned long long>(tracer.published_total()),
      static_cast<unsigned long long>(tracer.anomalies_total()));
  if (const auto worst = tracer.worst_latency()) {
    std::printf("\nworst-latency sampled trace:\n%s", obs::render(*worst).c_str());
  }
  const auto sheds = tracer.with_outcome(obs::TraceOutcome::kShedQueueFull);
  if (!sheds.empty()) {
    std::printf("\none of %zu shed traces (tail-sampled as anomalies):\n%s",
                sheds.size(), obs::render(sheds.front()).c_str());
  }

  // --- Prometheus exposition: what a scrape would return -------------
  obs::Registry registry;
  tracer.register_metrics(registry);
  engine.register_metrics(registry);
  cache.register_metrics(registry);
  std::string page;
  registry.expose(page);
  std::printf("\nscrape preview (first lines of %zu-byte exposition):\n", page.size());
  std::size_t printed = 0, pos = 0;
  while (printed < 12 && pos < page.size()) {
    const std::size_t eol = page.find('\n', pos);
    std::printf("  %s\n", page.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++printed;
  }
  return 0;
}
