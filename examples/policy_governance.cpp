// Governance tooling over a policy base (paper §2.2: externalised
// policies "facilitate audits and checks ... for the purposes of
// correctness, governance and compliance"; §3.1: conflicts must be found
// before deployment). A compliance officer's view of the repository:
// lint every policy, run static modality-conflict analysis, then check
// separation-of-duty meta-policies.
#include <iostream>
#include <memory>

#include "analysis/analysis.hpp"
#include "core/serialization.hpp"
#include "core/validate.hpp"

using namespace mdac;

namespace {

core::Policy purchasing_policy(const std::string& id, core::Effect effect,
                               const std::string& subject,
                               const std::string& action) {
  core::Policy p;
  p.policy_id = id;
  p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                        core::AttributeValue("purchase-order"));
  core::Rule r;
  r.id = id + "-rule";
  r.effect = effect;
  core::Target t;
  if (!subject.empty()) {
    t.require(core::Category::kSubject, core::attrs::kSubjectId,
              core::AttributeValue(subject));
  }
  t.require(core::Category::kAction, core::attrs::kActionId,
            core::AttributeValue(action));
  r.target = std::move(t);
  p.rules.push_back(std::move(r));
  return p;
}

}  // namespace

int main() {
  // The policy base under review: two sound policies, one broken one,
  // one that contradicts another, and one that violates SoD.
  core::PolicyStore store;
  store.add(purchasing_policy("finance-submit", core::Effect::kPermit, "carol",
                              "submit"));
  store.add(purchasing_policy("finance-approve", core::Effect::kPermit, "carol",
                              "approve"));  // SoD problem: same subject!
  store.add(purchasing_policy("freeze-orders", core::Effect::kDeny, "carol",
                              "submit"));   // contradicts finance-submit

  core::Policy broken = purchasing_policy("typo-policy", core::Effect::kPermit,
                                          "dave", "submit");
  broken.rule_combining = "majority-vote";  // no such algorithm
  broken.rules[0].condition =
      core::make_apply("frobnicate", core::lit("x"));  // no such function
  store.add(std::move(broken));

  std::cout << "=== 1. Lint: structural validation of every policy ===\n";
  const core::ValidationReport report = core::validate_store(store);
  for (const auto& finding : report.findings) {
    std::cout << "  ["
              << (finding.severity == core::FindingSeverity::kError ? "ERROR"
                                                                    : "warn ")
              << "] " << finding.path << ": " << finding.message << "\n";
  }
  std::cout << "  => " << report.error_count() << " errors, "
            << report.warning_count() << " warnings\n\n";

  std::cout << "=== 2. Static modality-conflict analysis ===\n";
  std::vector<const core::Policy*> policies;
  for (const auto* node : store.top_level()) {
    if (const auto* p = dynamic_cast<const core::Policy*>(node)) {
      policies.push_back(p);
    }
  }
  const analysis::AnalysisResult result = analysis::analyse(policies);
  for (const analysis::Conflict& c : result.conflicts) {
    std::cout << "  CONFLICT: " << result.atoms[c.permit_index].policy_id
              << " permits what " << result.atoms[c.deny_index].policy_id
              << " denies";
    if (!c.witness.empty()) {
      std::cout << "  (witness:";
      for (const auto& [key, value] : c.witness) {
        std::cout << " " << key.second << "=" << value;
      }
      std::cout << ")";
    }
    if (c.approximate) std::cout << "  [approximate]";
    std::cout << "\n";
  }
  std::cout << "  => " << result.conflicts.size()
            << " conflict(s); the deployed deny-overrides root resolves them "
               "in favour of deny\n\n";

  std::cout << "=== 3. Separation-of-duty meta-policies ===\n";
  const std::vector<analysis::SodMetaPolicy> metas{
      {"submit-vs-approve", "purchase-order", "submit", "purchase-order",
       "approve"}};
  const auto violations = analysis::check_sod(result.atoms, metas);
  for (const auto& v : violations) {
    std::cout << "  SoD VIOLATION '" << metas[v.meta_index].name << "': "
              << result.atoms[v.permit_a_index].policy_id << " + "
              << result.atoms[v.permit_b_index].policy_id << " for subject(s)";
    if (v.overlapping_subjects.empty()) {
      std::cout << " <anyone>";
    } else {
      for (const auto& s : v.overlapping_subjects) std::cout << " " << s;
    }
    std::cout << "\n";
  }
  std::cout << "  => " << violations.size()
            << " violation(s) — carol can both submit and approve\n\n";

  std::cout << "=== 4. Wire form of one policy, as auditors receive it ===\n";
  std::cout << core::node_to_string(*store.find("finance-submit"), true) << "\n";
  return 0;
}
