// Automated trust negotiation (paper §3.1): two strangers — a freelance
// researcher and a genomics data provider — establish enough mutual
// trust for a data grant, credential by credential, without any shared
// identity provider. Shows both strategies and a failure case.
#include <iostream>

#include "trust/negotiation.hpp"

using namespace mdac::trust;

namespace {

void report(const std::string& label, const NegotiationResult& r) {
  std::cout << label << "\n"
            << "  outcome:   " << (r.success ? "TRUST ESTABLISHED" : "FAILED") << "\n"
            << "  rounds:    " << r.rounds << ", messages: " << r.messages << "\n";
  std::cout << "  requester disclosed: ";
  for (const auto& c : r.disclosed_by_requester) std::cout << c << " ";
  std::cout << "\n  provider disclosed:  ";
  for (const auto& c : r.disclosed_by_provider) std::cout << c << " ";
  if (!r.success) std::cout << "\n  reason: " << r.failure_reason;
  std::cout << "\n\n";
}

}  // namespace

int main() {
  // The researcher holds an institutional affiliation, an ethics-board
  // approval, and (irrelevantly) a frequent-flyer card. The affiliation
  // is public; the ethics approval is only shown to certified providers.
  Party researcher;
  researcher.name = "researcher";
  researcher.credentials = {"affiliation", "ethics-approval", "frequent-flyer"};
  researcher.release_policies["ethics-approval"] =
      DisclosurePolicy::credential("data-steward-cert");

  // The provider's steward certificate is only revealed to affiliated
  // researchers; the dataset needs affiliation AND ethics approval.
  Party provider;
  provider.name = "genomics-provider";
  provider.credentials = {"data-steward-cert"};
  provider.release_policies["data-steward-cert"] =
      DisclosurePolicy::credential("affiliation");
  provider.resource_policies["genome-dataset"] =
      DisclosurePolicy::all_of({DisclosurePolicy::credential("affiliation"),
                                DisclosurePolicy::credential("ethics-approval")});

  std::cout << "=== Eager strategy ===\n";
  report("researcher requests genome-dataset",
         negotiate(researcher, provider, "genome-dataset", Strategy::kEager));

  std::cout << "=== Parsimonious strategy (need-to-know disclosure) ===\n";
  report("researcher requests genome-dataset",
         negotiate(researcher, provider, "genome-dataset", Strategy::kParsimonious));

  std::cout << "=== Without the ethics approval the negotiation dead-ends ===\n";
  Party unapproved = researcher;
  unapproved.credentials.erase("ethics-approval");
  report("unapproved researcher requests genome-dataset",
         negotiate(unapproved, provider, "genome-dataset", Strategy::kEager));

  std::cout << "=== Mutual stand-off: neither side will go first ===\n";
  Party cagey_provider = provider;
  cagey_provider.release_policies["data-steward-cert"] =
      DisclosurePolicy::credential("ethics-approval");  // circular demand
  report("researcher vs cagey provider",
         negotiate(researcher, cagey_provider, "genome-dataset", Strategy::kEager));
  return 0;
}
