// The paper's Fig. 1 end-to-end: three autonomous domains form a Virtual
// Organisation. Each keeps its own users, policies, PEP/PDP/PAP/PIP
// stack; the VO distributes a shared policy and establishes pairwise
// IdP trust. Watch how autonomy, federation, expiry and local overrides
// interact.
#include <iostream>

#include "common/clock.hpp"
#include "domain/domain.hpp"

using namespace mdac;

namespace {

core::Policy vo_shared_policy() {
  core::Policy p;
  p.policy_id = "vo-shared-dataset";
  p.description = "VO members with the analyst role may read the shared dataset";
  p.rule_combining = "first-applicable";
  core::Rule permit;
  permit.id = "analysts-read";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kSubject, core::attrs::kRole,
            core::AttributeValue("analyst"));
  t.require(core::Category::kResource, core::attrs::kResourceId,
            core::AttributeValue("vo-dataset"));
  t.require(core::Category::kAction, core::attrs::kActionId,
            core::AttributeValue("read"));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  core::Rule deny;
  deny.id = "default-deny";
  deny.effect = core::Effect::kDeny;
  core::Target dt;
  dt.require(core::Category::kResource, core::attrs::kResourceId,
             core::AttributeValue("vo-dataset"));
  deny.target = std::move(dt);
  p.rules.push_back(std::move(deny));
  return p;
}

void show(const std::string& label, const domain::Domain::CrossDomainResult& r) {
  std::cout << "  " << label << " -> " << (r.allowed ? "ALLOWED" : "REFUSED");
  if (!r.allowed) std::cout << "  (" << r.reason << ")";
  std::cout << "\n";
}

}  // namespace

int main() {
  common::ManualClock clock(1'000'000);

  domain::Domain uni("university", clock);
  domain::Domain lab("research-lab", clock);
  domain::Domain firm("industry-partner", clock);

  uni.register_user("alice", {{core::attrs::kRole,
                               core::Bag(core::AttributeValue("analyst"))}});
  uni.register_user("sam", {{core::attrs::kRole,
                             core::Bag(core::AttributeValue("student"))}});
  firm.register_user("erin", {{core::attrs::kRole,
                               core::Bag(core::AttributeValue("analyst"))}});

  std::cout << "=== Forming the Virtual Organisation ===\n";
  domain::VirtualOrganisation vo("climate-vo");
  vo.add_member(&uni);
  vo.add_member(&lab);
  vo.add_member(&firm);
  vo.establish_pairwise_trust();
  vo.distribute_policy(vo_shared_policy());
  std::cout << "  members: university, research-lab, industry-partner\n"
            << "  shared policy distributed; pairwise IdP trust established\n\n";

  std::cout << "=== Cross-domain requests against the lab's dataset ===\n";
  {
    const auto token = uni.issue_identity_assertion("alice", "research-lab", 60'000);
    show("alice (university analyst) reads vo-dataset",
         lab.handle_cross_domain_request(token, "vo-dataset", "read"));
  }
  {
    const auto token = uni.issue_identity_assertion("sam", "research-lab", 60'000);
    show("sam (university student) reads vo-dataset",
         lab.handle_cross_domain_request(token, "vo-dataset", "read"));
  }
  {
    const auto token = uni.issue_identity_assertion("alice", "research-lab", 60'000);
    show("alice tries to DELETE vo-dataset",
         lab.handle_cross_domain_request(token, "vo-dataset", "delete"));
  }

  std::cout << "\n=== Token lifetime matters ===\n";
  {
    const auto token = uni.issue_identity_assertion("alice", "research-lab", 5'000);
    clock.advance(10'000);
    show("alice with an expired assertion",
         lab.handle_cross_domain_request(token, "vo-dataset", "read"));
  }

  std::cout << "\n=== Domain autonomy: the firm bans university accounts ===\n";
  {
    core::Policy ban;
    ban.policy_id = "firm-local-ban";
    ban.description = "industry partner refuses university-asserted subjects";
    core::Rule deny;
    deny.id = "deny-university";
    deny.effect = core::Effect::kDeny;
    core::Target t;
    t.require(core::Category::kSubject, core::attrs::kSubjectDomain,
              core::AttributeValue("university"));
    deny.target = std::move(t);
    ban.rules.push_back(std::move(deny));
    firm.add_policy(std::move(ban));

    const auto token = uni.issue_identity_assertion("alice", "industry-partner", 60'000);
    show("alice at the industry partner (local ban in force)",
         firm.handle_cross_domain_request(token, "vo-dataset", "read"));

    const auto erin_token =
        firm.issue_identity_assertion("erin", "research-lab", 60'000);
    show("erin (firm analyst) at the lab",
         lab.handle_cross_domain_request(erin_token, "vo-dataset", "read"));
  }

  std::cout << "\n=== The lab's audit trail ===\n";
  for (const auto& record : lab.history().all()) {
    std::cout << "  t=" << record.at << "  " << record.subject << " " << record.action
              << " " << record.resource << "\n";
  }
  return 0;
}
