// The grid scenario the paper draws from CAS/VOMS (§2.2): a community
// authorisation service pre-screens members and issues signed capability
// tokens; storage providers validate the token, check its scope, and
// still apply their own local policy. Includes VOMS-style attribute
// certificates carrying FQANs.
#include <iostream>
#include <memory>

#include "capability/capability.hpp"
#include "tokens/attribute_certificate.hpp"

using namespace mdac;

namespace {

std::shared_ptr<core::Pdp> community_policy() {
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "cas-community-policy";
  p.rule_combining = "first-applicable";
  core::Rule permit;
  permit.id = "physics-members-read";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kSubject, "vo", core::AttributeValue("vo-physics"));
  t.require(core::Category::kAction, core::attrs::kActionId,
            core::AttributeValue("read"));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  core::Rule deny;
  deny.id = "deny";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  store->add(std::move(p));
  return std::make_shared<core::Pdp>(store);
}

std::shared_ptr<core::Pdp> storage_local_policy() {
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "storage-quota-policy";
  p.description = "the storage site refuses the 'heavy-users' group";
  p.rule_combining = "first-applicable";
  core::Rule deny;
  deny.id = "deny-heavy-users";
  deny.effect = core::Effect::kDeny;
  core::Target t;
  t.require(core::Category::kSubject, "group", core::AttributeValue("heavy-users"));
  deny.target = std::move(t);
  p.rules.push_back(std::move(deny));
  core::Rule permit;
  permit.id = "permit-rest";
  permit.effect = core::Effect::kPermit;
  p.rules.push_back(std::move(permit));
  store->add(std::move(p));
  return std::make_shared<core::Pdp>(store);
}

}  // namespace

int main() {
  common::ManualClock clock(500'000);
  const crypto::KeyPair cas_key = crypto::KeyPair::generate("cas-service");
  const crypto::KeyPair voms_key = crypto::KeyPair::generate("voms-server");

  capability::CapabilityService cas("cas", cas_key, community_policy(), clock,
                                    /*validity_ms=*/30'000);
  crypto::TrustStore site_trust;
  site_trust.add_trusted_key(cas_key);
  capability::CapabilityGate storage_gate("storage-site", site_trust, clock,
                                          storage_local_policy());

  std::cout << "=== Step I/II: members request capabilities from the CAS ===\n";
  const auto request_capability = [&](const std::string& who,
                                      const std::string& group) {
    capability::CapabilityRequest r;
    r.subject = who;
    r.subject_attributes["vo"] = core::Bag(core::AttributeValue("vo-physics"));
    r.subject_attributes["group"] = core::Bag(core::AttributeValue(group));
    r.resource = "replica-catalogue";
    r.action = "read";
    r.audience = "storage-site";
    return cas.issue(r);
  };

  const auto alice = request_capability("alice", "analysis");
  const auto heavy = request_capability("hector", "heavy-users");
  std::cout << "  alice:  " << (alice.token ? "capability issued" : "refused") << "\n";
  std::cout << "  hector: " << (heavy.token ? "capability issued" : "refused") << "\n";

  capability::CapabilityRequest outsider;
  outsider.subject = "mallory";
  outsider.subject_attributes["vo"] = core::Bag(core::AttributeValue("vo-chemistry"));
  outsider.resource = "replica-catalogue";
  outsider.action = "read";
  outsider.audience = "storage-site";
  std::cout << "  mallory (wrong VO): "
            << (cas.issue(outsider).token ? "capability issued (BUG!)" : "refused")
            << "\n\n";

  std::cout << "=== Step III/IV: presenting capabilities at the storage site ===\n";
  const auto admit = [&](const std::string& who,
                         const tokens::SignedAssertion& token,
                         const std::string& resource, const std::string& action) {
    const auto g = storage_gate.admit(token, resource, action);
    std::cout << "  " << who << " " << action << " " << resource << " -> "
              << (g.allowed ? "ALLOWED" : "REFUSED");
    if (!g.allowed) std::cout << " (" << g.reason << ")";
    std::cout << "\n";
  };
  admit("alice", *alice.token, "replica-catalogue", "read");
  admit("alice (scope escape)", *alice.token, "replica-catalogue", "delete");
  admit("hector (valid token, local quota ban)", *heavy.token,
        "replica-catalogue", "read");

  clock.advance(60'000);
  admit("alice (expired token)", *alice.token, "replica-catalogue", "read");

  std::cout << "\n=== VOMS-style attribute certificate ===\n";
  const auto ac = tokens::issue_attribute_certificate(
      "cn=alice,o=uni", "cn=voms,o=vo-physics", 1, clock.now(),
      clock.now() + 30'000,
      {tokens::Fqan{"/vo-physics", ""},
       tokens::Fqan{"/vo-physics/analysis", "submitter"}},
      voms_key);
  std::cout << "  FQANs:";
  for (const auto& f : ac.fqans) std::cout << " " << f.to_text();
  crypto::TrustStore voms_trust;
  voms_trust.add_trusted_key(voms_key);
  std::cout << "\n  validation at the site: "
            << tokens::to_string(tokens::validate(ac, voms_trust, clock.now()))
            << "\n  wire size: " << ac.to_wire().size() << " bytes\n";
  return 0;
}
