// A cross-enterprise healthcare scenario (the paper cites the XSPA
// profile for exactly this): a hospital combines
//   * RBAC with a role hierarchy and separation of duty,
//   * MAC labels on records (no read up),
//   * obligations (audit + patient notification) enforced by the PEP,
//   * a policy repository whose administration is guarded by its own
//     PDP ("policies protecting policies", §3.2).
#include <iostream>
#include <memory>

#include "models/mac.hpp"
#include "pap/admin_guard.hpp"
#include "pep/pep.hpp"
#include "rbac/adapter.hpp"
#include "core/serialization.hpp"

using namespace mdac;

int main() {
  std::cout << "=== Hospital RBAC model ===\n";
  rbac::RbacModel staff_model;
  for (const char* u : {"dr-grey", "nurse-lee", "aud-price"}) staff_model.add_user(u);
  for (const char* r : {"staff", "nurse", "doctor", "auditor"}) staff_model.add_role(r);
  staff_model.add_inheritance("nurse", "staff");
  staff_model.add_inheritance("doctor", "nurse");
  staff_model.grant_permission("nurse", {"vitals", "read"});
  staff_model.grant_permission("doctor", {"medical-record", "read"});
  staff_model.grant_permission("doctor", {"medical-record", "write"});
  staff_model.grant_permission("auditor", {"medical-record", "audit"});

  // Separation of duty: nobody both treats patients and audits records.
  const auto sod = staff_model.add_ssd_constraint(
      {"treat-vs-audit", {"doctor", "auditor"}, 2});
  std::cout << "  SSD constraint installed: " << (sod ? "ok" : sod.reason) << "\n";

  staff_model.assign_user("dr-grey", "doctor");
  staff_model.assign_user("nurse-lee", "nurse");
  staff_model.assign_user("aud-price", "auditor");
  const auto conflict = staff_model.assign_user("dr-grey", "auditor");
  std::cout << "  assigning auditor to dr-grey: "
            << (conflict ? "ok (BUG!)" : "refused — " + conflict.reason) << "\n\n";

  // Compile RBAC into policy and stand a PDP up over it.
  auto store = std::make_shared<core::PolicyStore>();
  store->add(rbac::compile_to_policy_set(staff_model, "hospital-rbac"));

  // An obligation-bearing policy layered on top: reading a record is
  // permitted but *must* be audited and the patient notified.
  {
    core::Policy oversight;
    oversight.policy_id = "record-oversight";
    oversight.description = "audited access to medical records";
    oversight.target_spec.require(core::Category::kResource,
                                  core::attrs::kResourceId,
                                  core::AttributeValue("medical-record"));
    core::Rule permit;
    permit.id = "permit-with-audit";
    permit.effect = core::Effect::kPermit;
    permit.condition = core::make_apply(
        "any-of", core::function_ref("string-equal"), core::lit("doctor"),
        core::designator(core::Category::kSubject, core::attrs::kRole,
                         core::DataType::kString));
    core::ObligationExpr audit;
    audit.id = "audit-access";
    audit.fulfill_on = core::Effect::kPermit;
    core::AttributeAssignmentExpr who;
    who.attribute_id = "subject";
    who.expr = core::make_apply(
        "one-and-only", core::designator(core::Category::kSubject,
                                         core::attrs::kSubjectId,
                                         core::DataType::kString));
    audit.assignments.push_back(std::move(who));
    permit.obligations.push_back(std::move(audit));
    core::ObligationExpr notify;
    notify.id = "notify-patient";
    notify.fulfill_on = core::Effect::kPermit;
    permit.obligations.push_back(std::move(notify));
    oversight.rules.push_back(std::move(permit));
    store->add(std::move(oversight));
  }

  auto pdp = std::make_shared<core::Pdp>(store, core::PdpConfig{"permit-overrides", true});
  rbac::RbacAttributeProvider role_provider(staff_model);
  pdp->set_resolver(&role_provider);

  // The PEP with obligation handlers.
  pep::EnforcementPoint gate(
      [&](const core::RequestContext& request) { return pdp->evaluate(request); });
  std::vector<std::string> audit_log;
  gate.register_obligation_handler("audit-access", pep::obligations::audit_to(&audit_log));
  bool notifications_up = true;
  gate.register_obligation_handler(
      "notify-patient", [&](const core::ObligationInstance&) { return notifications_up; });

  std::cout << "=== Record access through the PEP ===\n";
  const auto attempt = [&](const std::string& who, const std::string& action) {
    const auto result =
        gate.enforce(core::RequestContext::make(who, "medical-record", action));
    std::cout << "  " << who << " " << action << " medical-record -> "
              << (result.allowed ? "ALLOWED" : "REFUSED");
    if (!result.allowed) std::cout << " (" << result.reason << ")";
    std::cout << "\n";
  };
  attempt("dr-grey", "read");
  attempt("nurse-lee", "read");
  attempt("aud-price", "audit");

  std::cout << "  audit log: ";
  for (const auto& line : audit_log) std::cout << "[" << line << "] ";
  std::cout << "\n\n=== Obligations are binding ===\n";
  notifications_up = false;  // the notification service goes down
  attempt("dr-grey", "read");
  notifications_up = true;

  std::cout << "\n=== MAC labels on top (no read up) ===\n";
  models::BlpModel blp;
  blp.set_clearance("dr-grey", {2, {"cardiology"}});
  blp.set_classification("medical-record", {1, {"cardiology"}});
  blp.set_classification("board-minutes", {3, {}});
  std::cout << "  dr-grey reads medical-record: "
            << (blp.can_read("dr-grey", "medical-record") ? "label-ok" : "label-deny")
            << "\n  dr-grey reads board-minutes: "
            << (blp.can_read("dr-grey", "board-minutes") ? "label-ok" : "label-deny")
            << "\n";

  std::cout << "\n=== Administering the policy base is itself access-controlled ===\n";
  common::ManualClock clock;
  pap::PolicyRepository repository(clock);
  auto admin_store = std::make_shared<core::PolicyStore>();
  {
    core::Policy admin;
    admin.policy_id = "policy-admin";
    core::Rule r;
    r.id = "only-ciso";
    r.effect = core::Effect::kPermit;
    core::Target t;
    t.require(core::Category::kSubject, core::attrs::kSubjectId,
              core::AttributeValue("ciso"));
    r.target = std::move(t);
    admin.rules.push_back(std::move(r));
    admin_store->add(std::move(admin));
  }
  pap::GuardedRepository guarded(repository,
                                 std::make_shared<core::Pdp>(admin_store));
  const std::string doc = core::node_to_string(
      *store->find("record-oversight"));
  const auto mallory = guarded.submit(doc, "dr-grey");
  std::cout << "  dr-grey submits a policy: "
            << (mallory ? "accepted (BUG!)" : "refused") << "\n";
  const auto ciso = guarded.submit(doc, "ciso");
  std::cout << "  ciso submits a policy:    " << (ciso ? "accepted" : ciso.reason)
            << "\n";
  std::cout << "  audit entries in the PAP: " << repository.audit_log().size()
            << "\n";
  return 0;
}
