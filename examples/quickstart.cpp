// Quickstart: build a policy in code, evaluate requests, honour
// obligations. This is the smallest end-to-end use of the mdac public API
// — a single-domain slice of the architecture in the paper's Fig. 4.
#include <iostream>
#include <memory>

#include "core/pdp.hpp"
#include "core/policy.hpp"
#include "core/request.hpp"
#include "core/serialization.hpp"

using namespace mdac;

int main() {
  // Policy: doctors may read medical records, but every permit carries an
  // audit obligation; everyone else is denied.
  core::Policy policy;
  policy.policy_id = "medical-records";
  policy.description = "Doctors may read records; audited.";
  policy.rule_combining = "first-applicable";
  policy.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                             core::AttributeValue("medical-record"));

  core::Rule permit_doctors;
  permit_doctors.id = "permit-doctors-read";
  permit_doctors.effect = core::Effect::kPermit;
  permit_doctors.condition = core::make_apply(
      "and",
      core::make_apply("any-of", core::function_ref("string-equal"),
                  core::lit("doctor"),
                  core::designator(core::Category::kSubject, core::attrs::kRole,
                                   core::DataType::kString)),
      core::make_apply("any-of", core::function_ref("string-equal"), core::lit("read"),
                  core::designator(core::Category::kAction, core::attrs::kActionId,
                                   core::DataType::kString)));

  core::ObligationExpr audit;
  audit.id = "audit-log";
  audit.fulfill_on = core::Effect::kPermit;
  core::AttributeAssignmentExpr message;
  message.attribute_id = "message";
  message.expr = core::make_apply(
      "string-concatenate", core::lit("record access by "),
      core::make_apply("one-and-only",
                  core::designator(core::Category::kSubject,
                                   core::attrs::kSubjectId,
                                   core::DataType::kString)));
  audit.assignments.push_back(std::move(message));
  permit_doctors.obligations.push_back(std::move(audit));
  policy.rules.push_back(std::move(permit_doctors));

  core::Rule deny_rest;
  deny_rest.id = "deny-everyone-else";
  deny_rest.effect = core::Effect::kDeny;
  policy.rules.push_back(std::move(deny_rest));

  // Stand the PDP up.
  auto store = std::make_shared<core::PolicyStore>();
  store->add(std::move(policy));
  core::Pdp pdp(store);

  // Show the policy as it would travel between domains.
  std::cout << "=== Policy (wire form) ===\n"
            << core::node_to_string(*store->find("medical-records"), true)
            << "\n\n";

  const auto evaluate_and_print = [&](const std::string& who,
                                      const std::string& role,
                                      const std::string& action) {
    core::RequestContext request = core::RequestBuilder()
                                       .subject(who)
                                       .subject_attr(core::attrs::kRole,
                                                     core::AttributeValue(role))
                                       .resource("medical-record")
                                       .action(action)
                                       .build();
    const core::Decision d = pdp.evaluate(request);
    std::cout << who << " (" << role << ") " << action << " -> " << d.describe()
              << "\n";
    for (const auto& ob : d.obligations) {
      std::cout << "  obligation " << ob.id;
      for (const auto& [key, value] : ob.assignments) {
        std::cout << " " << key << "=\"" << value.to_text() << "\"";
      }
      std::cout << "\n";
    }
  };

  std::cout << "=== Decisions ===\n";
  evaluate_and_print("alice", "doctor", "read");
  evaluate_and_print("bob", "janitor", "read");
  evaluate_and_print("alice", "doctor", "delete");

  // A request for an unrelated resource falls outside the policy's target.
  core::RequestContext other = core::RequestContext::make("alice", "canteen-menu", "read");
  std::cout << "alice read canteen-menu -> " << pdp.evaluate(other).describe()
            << "\n";
  return 0;
}
