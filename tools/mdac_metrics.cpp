// mdac-metrics: runs a small traced decision workload and dumps the
// obs::Registry Prometheus text exposition to stdout — the quickest way
// to see what a scrape of an embedded mdac deployment returns, and a
// smoke test that every subsystem's register_metrics() stays wired.
//
//   mdac-metrics [--requests N] [--workers N] [--sample N] [--traces]
//
// The workload drives a PAP (bounded audit ring) publishing into a
// multi-worker DecisionEngine behind a two-level DecisionCache, floods
// past the queue bound so the shed path fires, republishes mid-stream
// so version evictions fire, and head-samples every `--sample`-th
// decision. With --traces, sampled explain traces are rendered after
// the exposition. Exit status: 0 on success, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "cache/decision_cache.hpp"
#include "common/clock.hpp"
#include "core/expression.hpp"
#include "core/serialization.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pap/repository.hpp"
#include "runtime/engine.hpp"
#include "runtime/snapshot.hpp"

using namespace mdac;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: mdac-metrics [--requests N] [--workers N] [--sample N] "
               "[--traces]\n");
  return 2;
}

core::Policy records_policy(bool allow_auditors) {
  core::Policy p;
  p.policy_id = "records-access";
  p.rule_combining = "first-applicable";
  p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                        core::AttributeValue("patient-records"));
  core::Rule doctors;
  doctors.id = "permit-doctors";
  doctors.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kSubject, core::attrs::kRole,
            core::AttributeValue("doctor"));
  doctors.target = std::move(t);
  p.rules.push_back(std::move(doctors));
  if (allow_auditors) {
    core::Rule auditors;
    auditors.id = "permit-auditors";
    auditors.effect = core::Effect::kPermit;
    core::Target ta;
    ta.require(core::Category::kSubject, core::attrs::kRole,
               core::AttributeValue("auditor"));
    auditors.target = std::move(ta);
    p.rules.push_back(std::move(auditors));
  }
  core::Rule deny;
  deny.id = "deny-rest";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  return p;
}

core::RequestContext request_as(const char* role, int user) {
  core::RequestContext r = core::RequestContext::make(
      "user-" + std::to_string(user), "patient-records", "read");
  r.add(core::Category::kSubject, core::attrs::kRole, core::AttributeValue(role));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 2000;
  std::size_t workers = 4;
  std::uint64_t sample = 50;
  bool show_traces = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--requests") {
      const char* v = next();
      if (v == nullptr) return usage();
      requests = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return usage();
      workers = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--sample") {
      const char* v = next();
      if (v == nullptr) return usage();
      sample = std::strtoull(v, nullptr, 10);
    } else if (arg == "--traces") {
      show_traces = true;
    } else {
      return usage();
    }
  }
  if (requests == 0 || workers == 0) return usage();

  // PAP with a bounded audit ring — small enough that the republication
  // below wraps it, so mdac_pap_dropped_audit_entries_total is live.
  common::WallClock clock;
  pap::PapConfig pap_config;
  pap_config.audit_capacity = 4;
  pap::PolicyRepository repo(clock, pap_config);
  runtime::SnapshotPublisher snapshots;
  runtime::RepositoryPublisher pap(repo, snapshots);
  pap.submit(core::node_to_string(records_policy(false)), "admin");
  pap.issue("records-access", "admin");

  obs::DecisionTracer tracer(
      obs::ObsConfig{.sample_every_n = sample, .ring_capacity = 512});
  cache::DecisionCache cache(
      cache::DecisionCache::TwoLevelConfig{.capacity = 4096});
  runtime::EngineConfig config;
  config.workers = workers;
  config.queue_capacity = 64;
  config.l1_capacity = 256;
  config.tracer = &tracer;
  runtime::DecisionEngine engine(snapshots, config, &cache);

  const char* roles[] = {"doctor", "auditor", "intern"};
  std::vector<std::future<runtime::EngineResult>> inflight;
  inflight.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    if (i == requests / 2) {
      // Mid-stream republication: auditors gain access, version
      // evictions and snapshot adoptions fire.
      pap.submit(core::node_to_string(records_policy(true)), "admin");
      pap.issue("records-access", "compliance");
    }
    inflight.push_back(engine.submit(
        request_as(roles[i % 3], static_cast<int>(i % 17))));
  }
  for (auto& f : inflight) f.get();
  engine.shutdown();

  obs::Registry registry;
  tracer.register_metrics(registry);
  engine.register_metrics(registry);
  cache.register_metrics(registry);
  repo.register_metrics(registry);
  std::string page;
  registry.expose(page);
  std::fputs(page.c_str(), stdout);

  if (show_traces) {
    std::fputs("\n# ---- sampled explain traces ----\n", stdout);
    for (const obs::Trace& trace : tracer.traces()) {
      std::fputs(obs::render(trace).c_str(), stdout);
      std::fputs("\n", stdout);
    }
  }
  return 0;
}
