// mdac-lint: static policy linter CLI over policy XML files.
//
//   mdac-lint [--max-findings N] <file-or-directory>...
//
// Parses every named .xml policy document (directories are scanned
// recursively), runs the full mdac::analysis pass suite over the
// combined corpus — so cross-file modality conflicts and references
// between files are checked, exactly as the repository's issue-time lint
// would see them — and prints structured findings. Exit status:
//   0  no error-severity findings (warnings/infos may exist)
//   1  at least one error-severity finding
//   2  usage, I/O or parse failure
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "core/serialization.hpp"

namespace {

namespace fs = std::filesystem;
using mdac::analysis::AnalysisReport;
using mdac::analysis::Finding;

int usage() {
  std::cerr << "usage: mdac-lint [--max-findings N] <file-or-directory>...\n";
  return 2;
}

std::vector<fs::path> collect_inputs(const std::vector<std::string>& args) {
  std::vector<fs::path> files;
  for (const std::string& arg : args) {
    const fs::path path(arg);
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && entry.path().extension() == ".xml") {
          files.push_back(entry.path());
        }
      }
    } else {
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void print_finding(const Finding& f) {
  std::cout << to_string(f.severity) << ": [" << to_string(f.pass) << "/"
            << f.code << "] ";
  if (!f.path.empty()) {
    std::cout << f.path;
  } else if (!f.root_id.empty()) {
    std::cout << f.root_id;
  }
  if (!f.other_path.empty()) {
    std::cout << " vs " << f.other_path;
  } else if (!f.other_root_id.empty()) {
    std::cout << " vs " << f.other_root_id;
  }
  std::cout << ": " << f.message;
  if (!f.witness.empty()) {
    std::cout << " [witness:";
    for (const auto& [key, value] : f.witness) {
      std::cout << " " << key.second << "=" << value;
    }
    std::cout << "]";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::size_t max_findings = 10000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-findings") {
      if (i + 1 >= argc) return usage();
      max_findings = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) return usage();

  const std::vector<fs::path> files = collect_inputs(args);
  if (files.empty()) {
    std::cerr << "mdac-lint: no .xml policy files found\n";
    return 2;
  }

  std::vector<mdac::core::PolicyNodePtr> roots;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "mdac-lint: cannot read " << file << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    try {
      roots.push_back(mdac::core::node_from_string(buffer.str()));
      std::cout << "parsed " << file.string() << " -> " << roots.back()->id()
                << "\n";
    } catch (const std::exception& e) {
      std::cerr << "mdac-lint: " << file << ": " << e.what() << "\n";
      return 2;
    }
  }

  std::vector<mdac::analysis::AnalysisInput> inputs;
  inputs.reserve(roots.size());
  for (const auto& root : roots) inputs.push_back({root.get(), nullptr});
  mdac::analysis::AnalyzerOptions options;
  options.max_findings_per_pass = max_findings;
  const AnalysisReport report = mdac::analysis::analyse_roots(inputs, options);

  for (const Finding& f : report.findings) print_finding(f);
  std::cout << roots.size() << " tree(s): " << report.error_count
            << " error(s), " << report.warning_count << " warning(s), "
            << report.info_count << " info(s)";
  if (report.suppressed > 0) {
    std::cout << " (" << report.suppressed << " suppressed)";
  }
  std::cout << "\n";
  return report.ok() ? 0 : 1;
}
